"""Exception hierarchy shared by all repro subpackages.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subpackages
define more specific classes here rather than locally so that error
types never create import cycles between the finance, OpenCL-simulator
and HLS layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class FinanceError(ReproError):
    """Invalid financial instrument, market data or solver failure."""


class ConvergenceError(FinanceError):
    """An iterative solver (e.g. implied volatility) failed to converge."""


class OpenCLError(ReproError):
    """Base class for errors raised by the OpenCL platform simulator.

    Mirrors the role of non-``CL_SUCCESS`` status codes in the real CL
    API; :attr:`code` carries the symbolic status name.
    """

    #: Symbolic CL status name, e.g. ``"CL_INVALID_KERNEL_ARGS"``.
    code = "CL_ERROR"

    def __init__(self, message: str = "", code: str | None = None):
        super().__init__(message or self.code)
        if code is not None:
            self.code = code


class InvalidArgumentError(OpenCLError):
    """A kernel was launched with unset or ill-typed arguments."""

    code = "CL_INVALID_KERNEL_ARGS"


class InvalidWorkGroupError(OpenCLError):
    """NDRange/work-group shape violates a device or API constraint."""

    code = "CL_INVALID_WORK_GROUP_SIZE"


class MemoryError_(OpenCLError):
    """Out-of-bounds buffer access or allocation beyond device limits."""

    code = "CL_MEM_OBJECT_ALLOCATION_FAILURE"


class BarrierDivergenceError(OpenCLError):
    """Work-items of one work-group did not all reach the same barrier."""

    code = "CL_BARRIER_DIVERGENCE"


class TransportFaultError(OpenCLError):
    """A (simulated) host<->device transfer or kernel launch failed.

    Real runtimes surface these conditions as ``CL_OUT_OF_RESOURCES``
    or ``CL_DEVICE_NOT_AVAILABLE``; the fault-injection layer raises
    this type so host programs can distinguish *recoverable* transport
    errors (worth a retry, per the data-centre FPGA deployment
    literature) from programming errors, which stay fatal.
    """

    code = "CL_OUT_OF_RESOURCES"


class EngineError(ReproError):
    """Base class for batched-pricing-engine failures.

    Chunk-level failures inside :class:`~repro.engine.PricingEngine`
    (worker exceptions, deadline overruns, crashed processes, poison
    inputs) are normalised to this taxonomy so callers never see a bare
    ``RuntimeError`` or a ``concurrent.futures`` internal leak through
    the API boundary.
    """


class ChunkTimeoutError(EngineError):
    """A chunk exceeded its wall-clock deadline (``chunk_timeout_s``)."""


class WorkerCrashError(EngineError):
    """A worker process died mid-chunk (e.g. ``BrokenProcessPool``)."""


class PoisonChunkError(EngineError):
    """A chunk kept failing (or produced non-finite prices) after retries."""


class BackendUnavailableError(EngineError):
    """A requested :class:`~repro.backends.KernelBackend` cannot run here.

    Raised when a backend's toolchain is missing (no ``numba`` import,
    no working C compiler) or its compilation fails.  ``auto``
    resolution catches this and falls through to the next candidate,
    ending at the always-available NumPy backend; an *explicitly*
    requested backend propagates it so a pinned configuration never
    silently runs on different code.
    """


class ServiceError(ReproError):
    """Base class for pricing-service failures.

    Raised by :class:`~repro.service.PricingService` for request-level
    conditions that are the *caller's* to handle — submitting to a
    closed service, malformed requests — as opposed to per-option
    pricing failures, which travel inside
    :class:`~repro.api.ServiceResult.failures` exactly like the
    engine's :class:`~repro.engine.reliability.FailureRecord` contract.
    """


class ServiceOverloadedError(ServiceError):
    """The service's admission queue is full (backpressure).

    The bounded request queue protects the coalescer from unbounded
    memory growth under overload; callers should back off and retry,
    shed load, or raise ``ServiceConfig.max_queue``.  Under overload
    the service also *sheds*: admitting a high-priority request may
    evict the oldest normal-priority entry from the queue, whose
    future then fails with this error.
    """


class DeadlineExceededError(ServiceError):
    """A request's ``deadline_ms`` expired before its result was ready.

    Raised on the request's future when the deadline passes while the
    request is still queued or bucketed (the engine never runs it), or
    when a joined in-flight computation finishes past the deadline.
    A deadline that is still live at flush time bounds the engine's
    per-chunk timeout for the flush that carries the request.
    """


class ChaosInjectedError(ServiceError):
    """A failure injected by the service chaos harness.

    Only ever raised when a :class:`~repro.service.chaos.ChaosPlan` is
    installed on the service under test; production configurations
    never see it.  Typed under :class:`ServiceError` so the service's
    per-request failure scoping recovers from it exactly like a real
    flush-level fault.
    """


class HLSError(ReproError):
    """Base class for HLS compiler-model errors."""


class FitError(HLSError):
    """The design does not fit on the selected FPGA part."""


class CompileOptionError(HLSError):
    """Inconsistent compiler options (e.g. SIMD width not a power of two)."""


class DeviceModelError(ReproError):
    """Invalid device-model configuration or query."""
