"""Exception hierarchy shared by all repro subpackages.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subpackages
define more specific classes here rather than locally so that error
types never create import cycles between the finance, OpenCL-simulator
and HLS layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class FinanceError(ReproError):
    """Invalid financial instrument, market data or solver failure."""


class ConvergenceError(FinanceError):
    """An iterative solver (e.g. implied volatility) failed to converge."""


class OpenCLError(ReproError):
    """Base class for errors raised by the OpenCL platform simulator.

    Mirrors the role of non-``CL_SUCCESS`` status codes in the real CL
    API; :attr:`code` carries the symbolic status name.
    """

    #: Symbolic CL status name, e.g. ``"CL_INVALID_KERNEL_ARGS"``.
    code = "CL_ERROR"

    def __init__(self, message: str = "", code: str | None = None):
        super().__init__(message or self.code)
        if code is not None:
            self.code = code


class InvalidArgumentError(OpenCLError):
    """A kernel was launched with unset or ill-typed arguments."""

    code = "CL_INVALID_KERNEL_ARGS"


class InvalidWorkGroupError(OpenCLError):
    """NDRange/work-group shape violates a device or API constraint."""

    code = "CL_INVALID_WORK_GROUP_SIZE"


class MemoryError_(OpenCLError):
    """Out-of-bounds buffer access or allocation beyond device limits."""

    code = "CL_MEM_OBJECT_ALLOCATION_FAILURE"


class BarrierDivergenceError(OpenCLError):
    """Work-items of one work-group did not all reach the same barrier."""

    code = "CL_BARRIER_DIVERGENCE"


class HLSError(ReproError):
    """Base class for HLS compiler-model errors."""


class FitError(HLSError):
    """The design does not fit on the selected FPGA part."""


class CompileOptionError(HLSError):
    """Inconsistent compiler options (e.g. SIMD width not a power of two)."""


class DeviceModelError(ReproError):
    """Invalid device-model configuration or query."""
