"""repro — a full reproduction of *Energy-Efficient FPGA Implementation
for Binomial Option Pricing Using OpenCL* (Mena Morales et al., DATE
2014).

Layers (bottom-up):

* :mod:`repro.finance` — options, CRR lattices, binomial/BS pricers,
  implied volatility, workload generation (the paper's application
  domain and its software reference);
* :mod:`repro.opencl` — a functional OpenCL platform simulator with
  real work-group/barrier semantics and profiled command queues;
* :mod:`repro.devices` — calibrated performance & energy models of the
  Terasic DE4 FPGA board, the GTX660 Ti and the Xeon X5450;
* :mod:`repro.hls` — an Altera-OpenCL-compiler/Quartus surrogate that
  regenerates Table I (resources, Fmax, power) from kernel IR;
* :mod:`repro.core` — the paper's two accelerator designs (kernels
  IV.A and IV.B with their host programs), the flawed-``pow`` math
  model, and the analytic Table II performance model;
* :mod:`repro.engine` — the batched pricing engine: cache-budgeted
  chunking, multi-process fan-out and workspace reuse around the
  kernels' exact arithmetic;
* :mod:`repro.service` — the in-process pricing service: request
  coalescing into engine-sized micro-batches, a content-keyed result
  cache with in-flight dedup, and bounded-queue admission control.

Quick start::

    import repro

    option = repro.Option(spot=100, strike=105, rate=0.03,
                          volatility=0.25, maturity=1.0,
                          option_type=repro.OptionType.PUT)
    result = repro.price([option], steps=1024, device="fpga",
                         kernel="iv_b")
    print(result.prices[0], result.options_per_second)
"""

from .api import (
    BatchResult,
    GreeksResult,
    PriceResult,
    PricingRequest,
    ServiceResult,
    close_shared_engines,
    greeks,
    price,
)
from .core import (
    ALTERA_13_0_DOUBLE,
    EXACT_DOUBLE,
    EXACT_SINGLE,
    AcceleratorResult,
    BinomialAccelerator,
    HostProgramA,
    HostProgramB,
    ReadbackMode,
    kernel_a_estimate,
    kernel_b_estimate,
    reference_estimate,
)
from .engine import EngineConfig, EngineResult, PricingEngine
from .errors import (
    DeadlineExceededError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)
from .finance import (
    ExerciseStyle,
    LatticeFamily,
    Option,
    OptionType,
    bs_price,
    generate_batch,
    generate_curve_scenario,
    implied_volatility,
    price_binomial,
    rmse,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "price",
    "PriceResult",
    "greeks",
    "GreeksResult",
    "BatchResult",
    "PricingRequest",
    "ServiceResult",
    "close_shared_engines",
    "PricingService",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "ChaosPlan",
    "HealthPolicy",
    "HealthState",
    "Option",
    "OptionType",
    "ExerciseStyle",
    "LatticeFamily",
    "price_binomial",
    "bs_price",
    "implied_volatility",
    "generate_batch",
    "generate_curve_scenario",
    "rmse",
    "BinomialAccelerator",
    "AcceleratorResult",
    "HostProgramA",
    "HostProgramB",
    "ReadbackMode",
    "EXACT_DOUBLE",
    "EXACT_SINGLE",
    "ALTERA_13_0_DOUBLE",
    "kernel_a_estimate",
    "kernel_b_estimate",
    "reference_estimate",
    "PricingEngine",
    "EngineConfig",
    "EngineResult",
]

from .service import (  # noqa: E402  (imports repro.api)
    ChaosPlan,
    HealthPolicy,
    HealthState,
    PricingService,
    ServiceConfig,
)
