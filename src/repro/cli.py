"""Command-line interface: ``python -m repro <experiment>``.

Every experiment of the evaluation (and a one-off pricing command) is
reachable from the shell, so the reproduction can be driven without
writing Python::

    python -m repro table1
    python -m repro table2 --options 200
    python -m repro saturation
    python -m repro ablation
    python -m repro accuracy --options 500
    python -m repro energy
    python -m repro usecase
    python -m repro portability
    python -m repro precision
    python -m repro clsource iv_b --steps 1024
    python -m repro price --spot 100 --strike 105 --type put
    python -m repro bench-engine --quick
    python -m repro bench-engine --quick --backend cnative
    python -m repro bench-engine --quick --out - | jq .config
    python -m repro bench-engine --trace-out trace.json --metrics-out m.prom
    python -m repro bench-greeks --quick
    python -m repro serve-bench --quick --fault-seed 101
    python -m repro obs --options 24 --steps 128
    python -m repro sweep run --spec steps-precision-quick --store sweep.jsonl
    python -m repro sweep status --store sweep.jsonl --fingerprint
    python -m repro sweep report --store sweep.jsonl --out frontier.json

The bench commands accept ``--out -`` to emit the benchmark document
as pure JSON on stdout (narration moves to stderr), so the output can
be piped straight into ``jq`` or a dashboard uploader.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]

# mirrors repro.backends.BACKENDS plus the "auto" probe order; kept
# literal so building the parser stays import-light
_BACKEND_CHOICES = ("auto", "numpy", "cnative", "numba")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Energy-Efficient FPGA Implementation for "
                    "Binomial Option Pricing Using OpenCL' (DATE 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_all = sub.add_parser("all", help="run every experiment in sequence")
    p_all.add_argument("--options", type=int, default=100,
                       help="accuracy-batch size for the heavy experiments")

    p_report = sub.add_parser("report",
                              help="emit a full markdown reproduction report")
    p_report.add_argument("--options", type=int, default=100)

    sub.add_parser("table1", help="Table I: resource usage (E1)")

    p_table2 = sub.add_parser("table2", help="Table II: performances (E2)")
    p_table2.add_argument("--options", type=int, default=200,
                          help="accuracy-batch size (default 200)")

    sub.add_parser("saturation", help="device saturation sweep (E6)")
    sub.add_parser("ablation", help="kernel IV.A readback ablation (E7)")

    p_acc = sub.add_parser("accuracy", help="Power-operator accuracy (E8)")
    p_acc.add_argument("--options", type=int, default=500)

    sub.add_parser("energy", help="energy workarounds / 10 W budget (E9)")
    sub.add_parser("usecase", help="volatility-curve use case (E10)")
    sub.add_parser("portability", help="future-work portability study (E11)")
    sub.add_parser("precision", help="single-precision ablation (E12)")

    p_bench = sub.add_parser(
        "bench-engine",
        help="benchmark the batched pricing engine (writes BENCH_engine.json)")
    p_bench.add_argument("--options", type=int, nargs="+",
                         default=[1024, 4096],
                         help="batch sizes to measure (default: 1024 4096)")
    p_bench.add_argument("--steps", type=int, default=1024,
                         help="tree depth N (default 1024)")
    p_bench.add_argument("--workers", type=int, nargs="+", default=[1, 4],
                         help="engine worker settings (default: 1 4)")
    p_bench.add_argument("--kernel", choices=("iv_a", "iv_b"), default="iv_b")
    p_bench.add_argument("--backend", choices=_BACKEND_CHOICES,
                         default="numpy",
                         help="roll-loop backend for the engine runs "
                              "(default numpy; parity vs the NumPy path "
                              "is asserted in-run)")
    p_bench.add_argument("--out", default="BENCH_engine.json",
                         help="output JSON path (default BENCH_engine.json; "
                              "'-' writes pure JSON to stdout)")
    p_bench.add_argument("--quick", action="store_true",
                         help="small CI-sized run (256 options, N=256, "
                              "workers 1 2)")
    p_bench.add_argument("--check-against", default=None, metavar="JSON",
                         help="fail if throughput regressed >30%% vs this "
                              "stored benchmark file")
    p_bench.add_argument("--trace-out", default=None, metavar="JSON",
                         help="record every engine run as a span tree and "
                              "write the JSON trace document here")
    p_bench.add_argument("--metrics-out", default=None, metavar="PROM",
                         help="write the process-wide metrics registry in "
                              "Prometheus text format here")

    p_greeks = sub.add_parser(
        "bench-greeks",
        help="benchmark the batched greeks workload "
             "(writes BENCH_greeks.json)")
    p_greeks.add_argument("--options", type=int, nargs="+",
                          default=[256, 1024],
                          help="batch sizes to measure (default: 256 1024)")
    p_greeks.add_argument("--steps", type=int, default=256,
                          help="tree depth N (default 256)")
    p_greeks.add_argument("--workers", type=int, nargs="+", default=[1, 4],
                          help="engine worker settings (default: 1 4)")
    p_greeks.add_argument("--kernel", choices=("iv_a", "iv_b", "reference"),
                          default="iv_b")
    p_greeks.add_argument("--backend", choices=_BACKEND_CHOICES,
                          default="numpy",
                          help="roll-loop backend for the engine runs "
                               "(default numpy)")
    p_greeks.add_argument("--out", default="BENCH_greeks.json",
                          help="output JSON path (default BENCH_greeks.json; "
                               "'-' writes pure JSON to stdout)")
    p_greeks.add_argument("--quick", action="store_true",
                          help="small CI-sized run (64 options, N=64, "
                               "workers 1 2)")
    p_greeks.add_argument("--check-against", default=None, metavar="JSON",
                          help="fail if throughput regressed >30%% vs this "
                               "stored benchmark file")
    p_greeks.add_argument("--trace-out", default=None, metavar="JSON",
                          help="record every engine run as a span tree and "
                               "write the JSON trace document here")
    p_greeks.add_argument("--metrics-out", default=None, metavar="PROM",
                          help="write the process-wide metrics registry in "
                               "Prometheus text format here")

    p_serve = sub.add_parser(
        "serve-bench",
        help="closed-loop load benchmark of the pricing service "
             "(writes BENCH_service.json; --shards switches to the "
             "sharded network tier and writes BENCH_serve.json)")
    p_serve.add_argument("--options", type=int, nargs="+", default=[1024],
                         help="batch sizes to measure (default: 1024)")
    p_serve.add_argument("--steps", type=int, default=512,
                         help="tree depth N (default 512)")
    p_serve.add_argument("--clients", type=int, default=64,
                         help="closed-loop client threads (default 64)")
    p_serve.add_argument("--shards", type=int, nargs="+", default=None,
                         metavar="N",
                         help="network mode: boot a PricingServer per "
                              "shard count and measure aggregate HTTP "
                              "throughput, routed-parity and the "
                              "saturation ramp (e.g. --shards 1 2)")
    p_serve.add_argument("--requests", type=int, default=64,
                         help="network mode: cache-cold requests per "
                              "measured run (default 64)")
    p_serve.add_argument("--options-per-request", type=int, default=8,
                         help="network mode: options per request "
                              "(default 8)")
    p_serve.add_argument("--max-batch", type=int, default=None,
                         help="service flush threshold in options "
                              "(default: --clients)")
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0,
                         help="coalescing deadline per bucket (default 2.0)")
    p_serve.add_argument("--kernel", choices=("iv_a", "iv_b", "reference"),
                         default="iv_b")
    p_serve.add_argument("--fault-seed", type=int, default=None,
                         help="inject FaultPlan.random(seed) transient "
                              "faults into every engine (must heal; parity "
                              "stays bitwise)")
    p_serve.add_argument("--backend", choices=_BACKEND_CHOICES,
                         default="numpy",
                         help="roll-loop backend for the direct engine and "
                              "every request (default numpy)")
    p_serve.add_argument("--out", default="BENCH_service.json",
                         help="output JSON path (default BENCH_service.json; "
                              "'-' writes pure JSON to stdout)")
    p_serve.add_argument("--quick", action="store_true",
                         help="small CI-sized run (256 options, N=256, "
                              "32 clients)")
    p_serve.add_argument("--check-against", default=None, metavar="JSON",
                         help="fail if throughput regressed >30%% vs this "
                              "stored benchmark file")
    p_serve.add_argument("--trace-out", default=None, metavar="JSON",
                         help="record service enqueue/flush spans (plus the "
                              "engine runs under them) and write the JSON "
                              "trace document here")
    p_serve.add_argument("--metrics-out", default=None, metavar="PROM",
                         help="write the process-wide metrics registry in "
                              "Prometheus text format here")

    p_stream = sub.add_parser(
        "stream-bench",
        help="streaming risk benchmark: tick-to-risk latency and "
             "revaluations/s over a ticking position book "
             "(writes BENCH_stream.json)")
    p_stream.add_argument("--instruments", type=int, nargs="+",
                          default=[256],
                          help="position-book sizes to sweep "
                               "(default: 256)")
    p_stream.add_argument("--tick-steps", type=int, default=64,
                          help="synthetic-market time steps (default 64)")
    p_stream.add_argument("--steps", type=int, default=256,
                          help="tree depth N per instrument (default 256)")
    p_stream.add_argument("--batch-ticks", type=int, default=8,
                          help="revalue after this many materialised "
                               "ticks (default 8)")
    p_stream.add_argument("--max-batch", type=int, default=None,
                          help="service flush threshold in options "
                               "(default: the instrument count)")
    p_stream.add_argument("--max-wait-ms", type=float, default=0.0,
                          help="coalescing deadline per bucket "
                               "(default 0.0: flush immediately)")
    p_stream.add_argument("--kernel", choices=("iv_a", "iv_b", "reference"),
                          default="iv_b")
    p_stream.add_argument("--backend", choices=_BACKEND_CHOICES,
                          default="numpy",
                          help="roll-loop backend for every revaluation "
                               "(default numpy)")
    p_stream.add_argument("--rel-tol", type=float, default=2e-3,
                          help="relative tolerance of the gated phase "
                               "(default 2e-3)")
    p_stream.add_argument("--fault-seeds", type=int, nargs="*",
                          default=[101, 202, 303], metavar="SEED",
                          help="fault seeds the aggregate stream must "
                               "hold bitwise parity under "
                               "(default: 101 202 303)")
    p_stream.add_argument("--out", default="BENCH_stream.json",
                          help="output JSON path (default BENCH_stream.json; "
                               "'-' writes pure JSON to stdout)")
    p_stream.add_argument("--quick", action="store_true",
                          help="small CI-sized run (32 instruments, "
                               "24 tick steps, N=64)")
    p_stream.add_argument("--check-against", default=None, metavar="JSON",
                          help="fail if throughput regressed >30%% vs this "
                               "stored benchmark file")
    p_stream.add_argument("--trace-out", default=None, metavar="JSON",
                          help="record the calm run's service spans and "
                               "write the JSON trace document here")
    p_stream.add_argument("--metrics-out", default=None, metavar="PROM",
                          help="write the process-wide metrics registry in "
                               "Prometheus text format here")

    p_run = sub.add_parser(
        "serve",
        help="run the sharded pricing server (HTTP/JSON wire API "
             "repro-serve/v1 on localhost; Ctrl-C to stop)")
    p_run.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    p_run.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = pick a free one and "
                            "print it)")
    p_run.add_argument("--shards", type=int, default=2,
                       help="shard worker processes (default 2)")
    p_run.add_argument("--max-batch", type=int, default=256,
                       help="per-shard coalescing flush threshold "
                            "(default 256)")
    p_run.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="per-shard coalescing deadline (default 2.0)")
    p_run.add_argument("--fault-seed", type=int, default=None,
                       help="inject FaultPlan.random(seed) transient "
                            "faults into every shard engine (testing)")

    p_obs = sub.add_parser(
        "obs",
        help="observability demo: trace a chunked device session end to end")
    p_obs.add_argument("--options", type=int, default=24,
                       help="batch size to price (default 24)")
    p_obs.add_argument("--steps", type=int, default=128,
                       help="tree depth N / work-group size (default 128)")
    p_obs.add_argument("--chunk", type=int, default=8,
                       help="options per scheduled chunk (default 8)")
    p_obs.add_argument("--trace-out", default=None, metavar="JSON",
                       help="write the JSON trace document here")
    p_obs.add_argument("--metrics-out", default=None, metavar="PROM",
                       help="write the metrics registry (Prometheus text) "
                            "here")

    p_cl = sub.add_parser("clsource", help="emit the OpenCL C of a kernel")
    p_cl.add_argument("kernel", choices=("iv_a", "iv_b"))
    p_cl.add_argument("--steps", type=int, default=1024)
    p_cl.add_argument("--precision", choices=("dp", "sp"), default="dp")

    p_sweep = sub.add_parser(
        "sweep",
        help="resumable scenario sweeps: run a declarative experiment "
             "grid through the pricing service, resume it after a "
             "crash, report the accuracy/throughput/energy frontier")
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)
    for verb, verb_help in (
            ("run", "execute a sweep grid (skips already-committed cells)"),
            ("resume", "alias of run: execute exactly the not-done cells")):
        p_verb = sweep_sub.add_parser(verb, help=verb_help)
        p_verb.add_argument("--spec", required=True, metavar="NAME|JSON",
                            help="builtin study name (e.g. steps-precision, "
                                 "steps-precision-quick) or a "
                                 "repro-sweep-spec/v1 JSON file")
        p_verb.add_argument("--store", required=True, metavar="JSONL",
                            help="append-only run-store file (created on "
                                 "first run, resumed afterwards)")
        p_verb.add_argument("--limit", type=int, default=None,
                            help="execute at most this many cells, then "
                                 "stop (the store stays resumable)")
        p_verb.add_argument("--workers", type=int, default=None,
                            help="engine worker processes for the shared "
                                 "service (default: in-process serial)")
    p_sw_status = sweep_sub.add_parser(
        "status", help="summarise a run store without executing anything")
    p_sw_status.add_argument("--store", required=True, metavar="JSONL")
    p_sw_status.add_argument("--fingerprint", action="store_true",
                             help="print only the store's canonical "
                                  "fingerprint (the bitwise-resume "
                                  "contract; shell-comparable)")
    p_sw_report = sweep_sub.add_parser(
        "report", help="emit the frontier report from a run store "
                       "(pure read; never re-executes a condition)")
    p_sw_report.add_argument("--store", required=True, metavar="JSONL")
    p_sw_report.add_argument("--out", default=None, metavar="JSON",
                             help="write the repro-sweep-frontier/v1 "
                                  "document here ('-' = pure JSON on "
                                  "stdout, table moves to stderr)")

    p_price = sub.add_parser("price", help="price one option on a platform")
    p_price.add_argument("--spot", type=float, required=True)
    p_price.add_argument("--strike", type=float, required=True)
    p_price.add_argument("--rate", type=float, default=0.03)
    p_price.add_argument("--vol", type=float, default=0.25)
    p_price.add_argument("--maturity", type=float, default=1.0)
    p_price.add_argument("--type", dest="option_type",
                         choices=("call", "put"), default="put")
    p_price.add_argument("--exercise", choices=("american", "european"),
                         default="american")
    p_price.add_argument("--platform", choices=("fpga", "gpu", "cpu"),
                         default="fpga")
    p_price.add_argument("--steps", type=int, default=1024)

    return parser


def _load_sweep_spec(name_or_path: str):
    """Resolve ``--spec``: builtin study name or a spec JSON file."""
    from .sweep import SweepSpec
    from .sweep.studies import BUILTIN_SPECS, builtin_spec

    if name_or_path in BUILTIN_SPECS:
        return builtin_spec(name_or_path)
    import json

    from .errors import SweepError

    try:
        with open(name_or_path, encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise SweepError(
            f"--spec {name_or_path!r} is neither a builtin study "
            f"({', '.join(sorted(BUILTIN_SPECS))}) nor a readable file")
    except json.JSONDecodeError as exc:
        raise SweepError(f"{name_or_path}: not valid JSON ({exc})")
    return SweepSpec.from_dict(document)


def _run_sweep(args) -> int:
    from .errors import SweepError
    from .sweep import RunStore, SweepRunner, frontier_report, render_frontier

    try:
        if args.sweep_command in ("run", "resume"):
            spec = _load_sweep_spec(args.spec)
            service_config = None
            if args.workers is not None:
                from .service import ServiceConfig
                service_config = ServiceConfig(workers=args.workers)
            runner = SweepRunner(spec, args.store,
                                 service_config=service_config)
            stats = runner.run(limit=args.limit)
            counts = runner.status()
            print(f"sweep {spec.name!r} (spec {spec.fingerprint()}): "
                  f"{stats.cells} cells, {stats.pruned} pruned, "
                  f"{stats.skipped} already committed")
            print(f"  executed {stats.executed} "
                  f"({stats.done} done, {stats.failed} failed, "
                  f"{stats.options} options, "
                  f"mean {stats.mean_cell_s * 1e3:.1f} ms/cell)")
            remaining = counts["pending"] + counts["running"]
            if remaining:
                print(f"  {remaining} cells remaining — "
                      f"resume with: repro sweep resume "
                      f"--spec {args.spec} --store {args.store}")
            else:
                print(f"  grid complete; store fingerprint "
                      f"{runner.store.fingerprint()}")
            return 0
        if args.sweep_command == "status":
            store = RunStore(args.store)
            if args.fingerprint:
                print(store.fingerprint())
                return 0
            counts = store.counts()
            total = sum(counts.values())
            print(f"{args.store}: {total} cells "
                  f"(spec {store.spec_fingerprint()})")
            for status, count in counts.items():
                print(f"  {status:8} {count}")
            print(f"  fingerprint {store.fingerprint()}")
            return 0
        if args.sweep_command == "report":
            store = RunStore(args.store)
            document = frontier_report(store)
            _, echo = _bench_streams(args.out or "")
            if args.out:
                path = _emit_document(document, args.out)
                echo(f"frontier document -> {path}")
            echo(render_frontier(document))
            return 0
    except SweepError as exc:
        print(f"sweep error: {exc}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - argparse enforces the choices


def _run_price(args) -> str:
    from .api import price
    from .core import BinomialAccelerator
    from .finance import ExerciseStyle, Option, OptionType, price_binomial

    option = Option(
        spot=args.spot, strike=args.strike, rate=args.rate,
        volatility=args.vol, maturity=args.maturity,
        option_type=OptionType(args.option_type),
        exercise=ExerciseStyle(args.exercise),
    )
    kernel = "reference" if args.platform == "cpu" else "iv_b"
    accelerator = BinomialAccelerator(platform=args.platform, kernel=kernel,
                                      steps=args.steps)
    result = price([option], steps=args.steps, device=accelerator).modeled
    reference = price_binomial(option, args.steps).price
    lines = [
        f"configuration : {accelerator.describe()}",
        f"price         : {result.prices[0]:.6f}",
        f"reference     : {reference:.6f} "
        f"(error {result.prices[0] - reference:+.2e})",
        f"modeled rate  : {result.estimate.options_per_second:,.0f} options/s "
        f"at {result.estimate.power_w:.1f} W "
        f"({result.estimate.options_per_joule:.1f} options/J)",
    ]
    return "\n".join(lines)


def _bench_streams(out: str):
    """Output plumbing shared by the bench commands.

    ``--out -`` flips a bench command into machine-readable mode: the
    benchmark document becomes the *only* bytes on stdout and every
    narration line moves to stderr, so the output parses as JSON.
    Returns ``(json_to_stdout, echo)``.
    """
    import functools

    if out == "-":
        return True, functools.partial(print, file=sys.stderr)
    return False, print


def _emit_document(document: dict, out: str) -> str:
    """Write the document to ``out`` (``-`` = stdout); returns label."""
    if out == "-":
        import json

        print(json.dumps(document, indent=2))
        return "<stdout>"
    from .bench.gate import write_benchmark

    return str(write_benchmark(document, out))


def _run_bench_engine(args) -> int:
    from .bench.engine_bench import run_benchmark
    from .bench.gate import check_throughput_regression, load_benchmark

    if args.quick:
        options_counts, steps, workers = [256], 256, [1, 2]
    else:
        options_counts, steps, workers = args.options, args.steps, args.workers
    _, echo = _bench_streams(args.out)

    tracer = None
    if args.trace_out:
        from .obs import Tracer
        tracer = Tracer()

    document = run_benchmark(
        options_counts=options_counts, steps=steps,
        workers_settings=workers, kernel=args.kernel,
        backend=args.backend, tracer=tracer,
    )
    path = _emit_document(document, args.out)

    if tracer is not None:
        from .obs.export import write_trace
        trace_path = write_trace(tracer, args.trace_out)
        echo(f"trace ({len(tracer.roots)} engine runs) -> {trace_path}")
    if args.metrics_out:
        from .obs import get_registry
        from .obs.export import write_metrics
        metrics_path = write_metrics(get_registry(), args.metrics_out)
        echo(f"metrics -> {metrics_path}")

    echo(f"engine benchmark (kernel {args.kernel}, "
         f"backend {args.backend}, N={steps}) -> {path}")
    for entry in document["results"]:
        base = entry["baseline"]
        echo(f"  {entry['options']} options: baseline "
             f"{base['options_per_second']:,.1f} options/s")
        for run in entry["runs"]:
            compile_note = (
                f", compile {run['backend_compile_seconds']:.2f}s"
                if run.get("backend_compile_seconds") else "")
            echo(f"    workers={run['workers']} "
                 f"backend={run['backend']}: "
                 f"{run['options_per_second']:,.1f} options/s "
                 f"({run['speedup_vs_baseline']:.2f}x baseline, "
                 f"{run['chunks']} chunks{compile_note})")
            reliability = {
                name: run[name]
                for name in ("retries", "timeouts", "pool_rebuilds",
                             "degraded_to_serial", "quarantined_options")
                if run.get(name)
            }
            if reliability:
                detail = ", ".join(f"{name}={count}"
                                   for name, count in reliability.items())
                echo(f"      reliability: {detail}")

    if args.check_against:
        stored = load_benchmark(args.check_against)
        failures = check_throughput_regression(document, stored)
        for failure in failures:
            echo(f"REGRESSION: {failure}")
        if failures:
            return 1
        echo(f"no throughput regression vs {args.check_against}")
    return 0


def _run_bench_greeks(args) -> int:
    from .bench.gate import check_throughput_regression, load_benchmark
    from .bench.greeks_bench import run_greeks_benchmark

    if args.quick:
        options_counts, steps, workers = [64], 64, [1, 2]
    else:
        options_counts, steps, workers = args.options, args.steps, args.workers
    _, echo = _bench_streams(args.out)

    tracer = None
    if args.trace_out:
        from .obs import Tracer
        tracer = Tracer()

    document = run_greeks_benchmark(
        options_counts=options_counts, steps=steps,
        workers_settings=workers, kernel=args.kernel,
        backend=args.backend, tracer=tracer,
    )
    path = _emit_document(document, args.out)

    if tracer is not None:
        from .obs.export import write_trace
        trace_path = write_trace(tracer, args.trace_out)
        echo(f"trace ({len(tracer.roots)} engine runs) -> {trace_path}")
    if args.metrics_out:
        from .obs import get_registry
        from .obs.export import write_metrics
        metrics_path = write_metrics(get_registry(), args.metrics_out)
        echo(f"metrics -> {metrics_path}")

    echo(f"greeks benchmark (kernel {args.kernel}, "
         f"backend {args.backend}, N={steps}) -> {path}")
    for entry in document["results"]:
        base = entry["baseline"]
        worst = max(entry["parity"]["max_abs_diff"].values())
        echo(f"  {entry['options']} options: scalar oracle "
             f"{base['options_per_second']:,.1f} options/s "
             f"(worst greek diff {worst:.2e})")
        for run in entry["runs"]:
            schedule = "fused" if run.get("fused_greeks") else "five-pass"
            fused_note = (
                f", {run['fused_speedup_vs_five_pass']:.2f}x vs five-pass"
                if "fused_speedup_vs_five_pass" in run else "")
            echo(f"    workers={run['workers']} {schedule}: "
                 f"{run['options_per_second'] / 5:,.1f} options/s "
                 f"({run['speedup_vs_baseline']:.2f}x scalar, "
                 f"{run['bump_passes']} bump passes, "
                 f"{run['chunks']} chunks{fused_note})")

    if args.check_against:
        stored = load_benchmark(args.check_against)
        failures = check_throughput_regression(document, stored)
        for failure in failures:
            echo(f"REGRESSION: {failure}")
        if failures:
            return 1
        echo(f"no throughput regression vs {args.check_against}")
    return 0


def _run_serve(args) -> int:
    """``repro serve``: run the sharded server until interrupted."""
    import signal
    import threading

    from .engine.faults import FaultPlan
    from .serve import PricingServer, ServeConfig
    from .service import ServiceConfig

    faults = (FaultPlan.random(args.fault_seed, 64)
              if args.fault_seed is not None else None)
    config = ServeConfig(
        host=args.host, port=args.port, shards=args.shards,
        service=ServiceConfig(max_batch=args.max_batch,
                              max_wait_ms=args.max_wait_ms,
                              faults=faults),
    )
    server = PricingServer(config).start()
    stop = threading.Event()

    def _interrupt(_signum, _frame):
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _interrupt)
    print(f"serving on http://{server.host}:{server.port} "
          f"({args.shards} shards, wire schema repro-serve/v1)",
          flush=True)
    print("endpoints: POST /v1/price, GET /healthz, GET /stats "
          "-- Ctrl-C to stop", flush=True)
    try:
        while not stop.wait(timeout=1.0):
            pass
    except KeyboardInterrupt:
        pass
    stats = server.stop()
    print(f"served {stats.requests} requests "
          f"({stats.options} options, {stats.errors} errors, "
          f"{stats.shard_restarts} shard restarts)")
    return 0


def _run_serve_network_bench(args) -> int:
    """``repro serve-bench --shards``: the sharded network tier."""
    from .bench.gate import check_throughput_regression, load_benchmark
    from .bench.service_bench import run_serve_benchmark

    if args.quick:
        requests_total, per_request, steps, clients = 32, 8, 128, 8
    else:
        requests_total, per_request, steps, clients = (
            args.requests, args.options_per_request, args.steps,
            args.clients)
    out = "BENCH_serve.json" if args.out == "BENCH_service.json" else args.out
    _, echo = _bench_streams(out)

    tracer = None
    if args.trace_out:
        from .obs import Tracer
        tracer = Tracer()

    document = run_serve_benchmark(
        requests_total=requests_total, options_per_request=per_request,
        steps=steps, shard_counts=tuple(args.shards), clients=clients,
        fault_seed=args.fault_seed, backend=args.backend,
        max_wait_ms=args.max_wait_ms, tracer=tracer,
    )
    path = _emit_document(document, out)

    if tracer is not None:
        from .obs.export import write_trace
        trace_path = write_trace(tracer, args.trace_out)
        echo(f"trace ({len(tracer.roots)} serve requests) -> {trace_path}")
    if args.metrics_out:
        from .obs import get_registry
        from .obs.export import write_metrics
        metrics_path = write_metrics(get_registry(), args.metrics_out)
        echo(f"metrics -> {metrics_path}")

    fault_note = (f", fault seed {args.fault_seed}"
                  if args.fault_seed is not None else "")
    echo(f"serve benchmark (network, backend {args.backend}, N={steps}, "
         f"{requests_total} requests x {per_request} options, "
         f"{clients} clients{fault_note}) -> {path}")
    entry = document["results"][0]
    for run in entry["runs"]:
        serve = run["serve"]
        transport = (f"{serve['shm_results']} shm / "
                     f"{serve['pickle_results']} pickled results")
        echo(f"  shards={run['workers']}: "
             f"{run['options_per_second']:,.1f} options/s "
             f"({run['requests_per_second']:,.1f} req/s, "
             f"{run['speedup_vs_one_shard']:.2f}x one shard, "
             f"{run['efficiency_vs_linear']:.0%} of linear, {transport})")
        latency = run["latency"]
        echo(f"    latency: p50 {latency['p50_ms']:.2f} ms, "
             f"p99 {latency['p99_ms']:.2f} ms over "
             f"{latency['count']} requests")
    scaling = entry["scaling"]
    if scaling["two_shard_speedup"] is not None:
        state = "asserted" if scaling["asserted"] else \
            "recorded only (single-CPU host)"
        echo(f"  scaling: 2 shards = {scaling['two_shard_speedup']:.2f}x "
             f"one shard ({state}, floor "
             f"{scaling['min_two_shard_speedup']:.1f}x)")
    saturation = entry["saturation"]
    if saturation is not None:
        point = saturation["saturation_offered_rps"]
        if point is not None:
            echo(f"  saturation: loss crosses "
                 f"{saturation['loss_threshold']:.0%} at "
                 f"~{point:,.0f} offered req/s")
        else:
            top = saturation["levels"][-1]
            echo(f"  saturation: no loss up to "
                 f"{top['offered_rps']:,.0f} offered req/s "
                 f"(p99 {top['latency']['p99_ms']:.1f} ms)"
                 if "latency" in top else
                 f"  saturation: no loss up to "
                 f"{top['offered_rps']:,.0f} offered req/s")

    if args.check_against:
        stored = load_benchmark(args.check_against)
        failures = check_throughput_regression(document, stored)
        for failure in failures:
            echo(f"REGRESSION: {failure}")
        if failures:
            return 1
        echo(f"no throughput regression vs {args.check_against}")
    return 0


def _run_serve_bench(args) -> int:
    from .bench.gate import check_throughput_regression, load_benchmark
    from .bench.service_bench import run_service_benchmark

    if args.shards:
        return _run_serve_network_bench(args)
    if args.quick:
        options_counts, steps, clients = [256], 256, 32
    else:
        options_counts, steps, clients = args.options, args.steps, args.clients
    _, echo = _bench_streams(args.out)

    tracer = None
    if args.trace_out:
        from .obs import Tracer
        tracer = Tracer()

    document = run_service_benchmark(
        options_counts=options_counts, steps=steps, kernel=args.kernel,
        clients=clients, max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms, fault_seed=args.fault_seed,
        backend=args.backend, tracer=tracer,
    )
    path = _emit_document(document, args.out)

    if tracer is not None:
        from .obs.export import write_trace
        trace_path = write_trace(tracer, args.trace_out)
        echo(f"trace ({len(tracer.roots)} root spans) -> {trace_path}")
    if args.metrics_out:
        from .obs import get_registry
        from .obs.export import write_metrics
        metrics_path = write_metrics(get_registry(), args.metrics_out)
        echo(f"metrics -> {metrics_path}")

    fault_note = (f", fault seed {args.fault_seed}"
                  if args.fault_seed is not None else "")
    echo(f"service benchmark (kernel {args.kernel}, "
         f"backend {args.backend}, N={steps}, "
         f"{clients} clients{fault_note}) -> {path}")
    for entry in document["results"]:
        base = entry["baseline"]
        echo(f"  {entry['options']} options: direct engine "
             f"{base['options_per_second']:,.1f} options/s")
        for run in entry["runs"]:
            service = run["service"]
            echo(f"    coalesced: {run['options_per_second']:,.1f} "
                 f"options/s ({run['efficiency_vs_direct']:.0%} of direct, "
                 f"{service['flushes']} flushes, mean "
                 f"{service['mean_flush_options']:.1f} options/flush)")
            echo(f"    cache: cold {run['cache_cold_s'] * 1e3:.1f} ms, "
                 f"hit {run['cache_hit_s'] * 1e3:.3f} ms "
                 f"({run['cache_speedup']:.0f}x)")
            latency = run["latency"]
            echo(f"    latency: p50 {latency['p50_ms']:.2f} ms, "
                 f"p99 {latency['p99_ms']:.2f} ms over "
                 f"{latency['count']} requests")
        overload = entry["overload"]
        saturation = overload["saturation_offered_rps"]
        if saturation is not None:
            echo(f"    overload: sheds/rejects cross "
                 f"{overload['loss_threshold']:.0%} at "
                 f"~{saturation:,.0f} offered req/s")
        else:
            top = overload["levels"][-1]
            echo(f"    overload: no saturation up to "
                 f"{top['offered_rps']:,.0f} offered req/s "
                 f"(loss {top['loss_rate']:.1%})")

    if args.check_against:
        stored = load_benchmark(args.check_against)
        failures = check_throughput_regression(document, stored)
        for failure in failures:
            echo(f"REGRESSION: {failure}")
        if failures:
            return 1
        echo(f"no throughput regression vs {args.check_against}")
    return 0


def _run_stream_bench(args) -> int:
    from .bench.gate import check_throughput_regression, load_benchmark
    from .bench.stream_bench import run_stream_benchmark

    if args.quick:
        instruments, tick_steps, steps = [32], 24, 64
    else:
        instruments, tick_steps, steps = (args.instruments, args.tick_steps,
                                          args.steps)
    _, echo = _bench_streams(args.out)

    tracer = None
    if args.trace_out:
        from .obs import Tracer
        tracer = Tracer()

    document = run_stream_benchmark(
        instrument_counts=instruments, tick_steps=tick_steps, steps=steps,
        kernel=args.kernel, batch_ticks=args.batch_ticks,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        fault_seeds=args.fault_seeds, backend=args.backend,
        rel_tol=args.rel_tol, tracer=tracer,
    )
    path = _emit_document(document, args.out)

    if tracer is not None:
        from .obs.export import write_trace
        trace_path = write_trace(tracer, args.trace_out)
        echo(f"trace ({len(tracer.roots)} root spans) -> {trace_path}")
    if args.metrics_out:
        from .obs import get_registry
        from .obs.export import write_metrics
        metrics_path = write_metrics(get_registry(), args.metrics_out)
        echo(f"metrics -> {metrics_path}")

    echo(f"stream benchmark (kernel {args.kernel}, backend {args.backend}, "
         f"N={steps}, {tick_steps} tick steps, "
         f"batch {args.batch_ticks} ticks) -> {path}")
    for entry in document["results"]:
        parity = entry["parity"]
        echo(f"  {entry['options']} instruments: {entry['ticks']} ticks, "
             f"{entry['aggregates']} aggregates")
        for run in entry["runs"]:
            latency = run["latency"]
            echo(f"    {run['options_per_second']:,.1f} revaluations/s, "
                 f"{run['ticks_per_second']:,.1f} ticks/s "
                 f"over {run['wall_time_s']:.2f} s")
            echo(f"    tick-to-risk: p50 {latency['p50_ms']:.2f} ms, "
                 f"p99 {latency['p99_ms']:.2f} ms, "
                 f"p99.9 {latency['p999_ms']:.2f} ms over "
                 f"{latency['count']} ticks")
        echo(f"    parity: bitwise vs oracle "
             f"({parity['oracle_checks']} checks), replay, "
             f"fault seeds {parity['fault_seeds']}")
        tolerance = entry["tolerance"]
        echo(f"    tolerance rel_tol={tolerance['rel_tol']:g}: "
             f"{tolerance['suppressed_ticks']} ticks suppressed "
             f"({tolerance['suppression_rate']:.0%}), "
             f"{tolerance['revaluations_saved']} revaluations saved")

    if args.check_against:
        stored = load_benchmark(args.check_against)
        failures = check_throughput_regression(document, stored)
        for failure in failures:
            echo(f"REGRESSION: {failure}")
        if failures:
            return 1
        echo(f"no throughput regression vs {args.check_against}")
    return 0


def _run_obs(args) -> int:
    """Observability demo: one chunked device session, fully traced.

    Prices a batch through the kernel IV.B host program (Figure 4's
    three host commands per chunk) on the modeled DE4, recording the
    full five-level hierarchy — run -> group -> chunk -> attempt ->
    queue-command — then prints the span tree, the simulated DMA/kernel
    lane timeline, and the metric families the session produced.
    """
    from .core.host_b import HostProgramB
    from .devices import fpga_device
    from .finance import generate_batch
    from .obs import Tracer, get_registry
    from .obs.export import (
        render_queue_timeline,
        render_span_tree,
        write_metrics,
        write_trace,
    )

    batch = list(generate_batch(n_options=args.options, seed=20140324).options)
    program = HostProgramB(fpga_device("iv_b"), steps=args.steps)

    tracer = Tracer()
    run_span = tracer.start_span(
        "obs.device-session", "run",
        program="host_b", device=program.device.name,
        options=len(batch), steps=args.steps,
    )
    group_span = run_span.child(
        f"group[steps={args.steps}]", "group",
        steps=args.steps, options=len(batch),
    )
    for lo in range(0, len(batch), max(1, args.chunk)):
        chunk = batch[lo:lo + max(1, args.chunk)]
        chunk_span = group_span.child(
            f"chunk[{lo}+{len(chunk)}]", "chunk",
            first_index=lo, options=len(chunk), steps=args.steps,
        )
        attempt_span = chunk_span.child("attempt-0", "attempt",
                                        attempt=0, mode="device")
        program.queue.attach_span(attempt_span)
        try:
            run = program.price(chunk)
        finally:
            program.queue.detach_span()
        attempt_span.set(
            simulated_time_s=run.simulated_time_s,
            bytes_read=run.bytes_read, bytes_written=run.bytes_written,
        ).end()
        chunk_span.end()
    group_span.end()
    run_span.end()

    root = tracer.as_dicts()[0]
    print(render_span_tree(root))
    print()
    print(render_queue_timeline([root]))
    print()
    registry = get_registry()
    for name in registry.names():
        metric = registry.get(name)
        for sample_name, label_key, value in metric.sorted_samples():
            labels = ",".join(f"{k}={v}" for k, v in label_key)
            print(f"{sample_name}{'{' + labels + '}' if labels else ''} "
                  f"= {value:g}")

    if args.trace_out:
        print(f"\ntrace -> {write_trace(tracer, args.trace_out)}")
    if args.metrics_out:
        print(f"metrics -> {write_metrics(registry, args.metrics_out)}")
    return 0


def _run_clsource(args) -> str:
    from .core.clsource import kernel_a_source, kernel_b_source
    from .hls import KERNEL_A_OPTIONS, KERNEL_B_OPTIONS

    if args.kernel == "iv_b":
        return kernel_b_source(args.steps, KERNEL_B_OPTIONS, args.precision)
    return kernel_a_source(KERNEL_A_OPTIONS, args.precision)


def _run_all(accuracy_options: int) -> int:
    """Regenerate every experiment, in DESIGN.md order."""
    from .bench import (
        accuracy_experiment,
        readback_ablation,
        saturation_sweep,
        table1,
        table2,
        volatility_curve_usecase,
    )
    from .bench.experiments import (
        energy_workarounds,
        portability_study,
        precision_ablation,
    )

    stages = (
        ("E1  Table I", lambda: table1().rendered),
        ("E2  Table II", lambda: table2(accuracy_options=accuracy_options).rendered),
        ("E6  saturation", lambda: saturation_sweep().rendered),
        ("E7  readback ablation", lambda: readback_ablation().rendered),
        ("E8  pow accuracy",
         lambda: accuracy_experiment(n_options=accuracy_options).rendered),
        ("E9  energy workarounds", lambda: energy_workarounds().rendered),
        ("E10 volatility-curve use case",
         lambda: volatility_curve_usecase().rendered),
        ("E11 portability (future work)",
         lambda: portability_study().rendered),
        ("E12 precision ablation",
         lambda: precision_ablation(accuracy_options=accuracy_options).rendered),
    )
    for title, run in stages:
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
        print(run())
    print("\n(E3-E5 are functional dataflow checks: run "
          "`pytest benchmarks/test_fig*` to execute them.)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:
        # downstream pager/head closed the pipe: exit quietly like any
        # well-behaved unix filter
        return 0


def _dispatch(args) -> int:

    if args.command == "all":
        return _run_all(args.options)
    if args.command == "report":
        from .bench.report import generate_report
        print(generate_report(accuracy_options=args.options))
        return 0
    if args.command == "table1":
        from .bench import table1
        print(table1().rendered)
    elif args.command == "table2":
        from .bench import table2
        print(table2(accuracy_options=args.options).rendered)
    elif args.command == "saturation":
        from .bench import saturation_sweep
        print(saturation_sweep().rendered)
    elif args.command == "ablation":
        from .bench import readback_ablation
        print(readback_ablation().rendered)
    elif args.command == "accuracy":
        from .bench import accuracy_experiment
        print(accuracy_experiment(n_options=args.options).rendered)
    elif args.command == "energy":
        from .bench.experiments import energy_workarounds
        print(energy_workarounds().rendered)
    elif args.command == "usecase":
        from .bench import volatility_curve_usecase
        print(volatility_curve_usecase().rendered)
    elif args.command == "portability":
        from .bench.experiments import portability_study
        print(portability_study().rendered)
    elif args.command == "precision":
        from .bench.experiments import precision_ablation
        print(precision_ablation().rendered)
    elif args.command == "bench-engine":
        return _run_bench_engine(args)
    elif args.command == "bench-greeks":
        return _run_bench_greeks(args)
    elif args.command == "serve-bench":
        return _run_serve_bench(args)
    elif args.command == "stream-bench":
        return _run_stream_bench(args)
    elif args.command == "sweep":
        return _run_sweep(args)
    elif args.command == "serve":
        return _run_serve(args)
    elif args.command == "obs":
        return _run_obs(args)
    elif args.command == "clsource":
        print(_run_clsource(args))
    elif args.command == "price":
        print(_run_price(args))
    else:  # pragma: no cover - argparse enforces the choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
