"""Financial substrate: contracts, lattices, pricers, implied vol.

Public surface of the pricing mathematics the accelerator implements.
The simulated OpenCL kernels (``repro.core``) compute exactly what
:func:`price_binomial` computes; this package is both the reference
software of the paper's Table II and the oracle the kernels are
validated against.
"""

from .american import baw_price
from .binomial import (
    PricingResult,
    exercise_boundary,
    price_binomial,
    price_binomial_batch,
    price_binomial_scalar,
)
from .black_scholes import BSGreeks, bs_greeks, bs_price
from .convergence import (
    ConvergencePoint,
    convergence_study,
    estimate_convergence_order,
    richardson_extrapolation,
)
from .greeks import LatticeGreeks, lattice_greeks
from .implied_vol import (
    VolCurvePoint,
    implied_vol_bisection,
    implied_vol_brent,
    implied_vol_curve,
    implied_vol_newton,
    implied_volatility,
)
from .lattice import (
    LatticeArrays,
    LatticeFamily,
    LatticeParams,
    asset_prices_at_step,
    build_lattice_arrays,
    build_lattice_params,
)
from .montecarlo import MCResult, price_american_lsmc, price_european_mc
from .quadrature import price_quadrature
from .market import (
    PAPER_BATCH_SIZE,
    PAPER_STEPS,
    OptionBatch,
    VolatilityCurveScenario,
    VolatilitySurfaceScenario,
    WorkloadSpec,
    generate_batch,
    generate_curve_scenario,
    generate_surface_scenario,
)
from .options import (
    ExerciseStyle,
    Option,
    OptionArrays,
    OptionType,
    intrinsic_value,
    option_arrays,
    payoff,
)
from .validation import classify_rmse, max_abs_error, relative_rmse, rmse

__all__ = [
    "Option",
    "OptionType",
    "ExerciseStyle",
    "intrinsic_value",
    "payoff",
    "OptionArrays",
    "option_arrays",
    "LatticeFamily",
    "LatticeParams",
    "LatticeArrays",
    "build_lattice_params",
    "build_lattice_arrays",
    "asset_prices_at_step",
    "PricingResult",
    "price_binomial",
    "price_binomial_scalar",
    "price_binomial_batch",
    "exercise_boundary",
    "bs_price",
    "bs_greeks",
    "BSGreeks",
    "ConvergencePoint",
    "convergence_study",
    "richardson_extrapolation",
    "estimate_convergence_order",
    "baw_price",
    "MCResult",
    "price_european_mc",
    "price_american_lsmc",
    "price_quadrature",
    "LatticeGreeks",
    "lattice_greeks",
    "implied_volatility",
    "implied_vol_bisection",
    "implied_vol_brent",
    "implied_vol_newton",
    "implied_vol_curve",
    "VolCurvePoint",
    "WorkloadSpec",
    "OptionBatch",
    "generate_batch",
    "VolatilityCurveScenario",
    "generate_curve_scenario",
    "VolatilitySurfaceScenario",
    "generate_surface_scenario",
    "PAPER_BATCH_SIZE",
    "PAPER_STEPS",
    "rmse",
    "relative_rmse",
    "max_abs_error",
    "classify_rmse",
]
