"""Reference binomial pricers (the paper's "reference software").

The paper's baseline is a single-threaded C program running CRR backward
induction on one Xeon core.  This module provides the equivalent
reference implementations used throughout the library:

* :func:`price_binomial_scalar` — a deliberately plain, loop-based
  pricer that mirrors the C reference one arithmetic operation at a
  time.  It is the ground truth the simulated kernels are validated
  against at small ``N`` and is also what the CPU device model's
  cycles-per-node calibration refers to.
* :func:`price_binomial` — a numpy-vectorised pricer (vector over tree
  rows) that produces identical results in double precision and is fast
  enough to run the paper's full configuration (N=1024, thousands of
  options) inside the accuracy experiments.
* :func:`price_binomial_batch` — removed in repro 2.0 (raising stub
  with the migration table; batches go through :func:`repro.api.price`).

All pricers support single precision (``dtype=np.float32``) because
Table II reports a single-precision software reference row whose RMSE
(~1e-3) the accuracy experiment reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FinanceError, ReproError
from .lattice import LatticeFamily, LatticeParams, build_lattice_params
from .options import Option

__all__ = [
    "PricingResult",
    "price_binomial",
    "price_binomial_scalar",
    "price_binomial_batch",
    "exercise_boundary",
]


@dataclass(frozen=True)
class PricingResult:
    """Output of a binomial pricing run.

    :param price: option value at the root node ``V[0, 0]``.
    :param params: the lattice constants used.
    :param tree_nodes: number of node updates performed (the unit of the
        paper's "tree nodes/s" throughput metric).
    """

    price: float
    params: LatticeParams
    tree_nodes: int


def _validate_steps(steps: int) -> None:
    if steps < 1:
        raise FinanceError(f"steps must be >= 1, got {steps}")


def price_binomial(
    option: Option,
    steps: int = 1024,
    family: LatticeFamily = LatticeFamily.CRR,
    dtype=np.float64,
) -> PricingResult:
    """Price ``option`` on a recombining binomial tree (vectorised).

    Backward induction over rows: the leaf row holds the payoff, then
    each step applies the discounted expectation and (for American
    exercise) the early-exercise floor of the paper's Equation (1).

    :param option: contract to price.
    :param steps: time discretisation ``N`` (paper default 1024).
    :param family: lattice parameterisation (default CRR).
    :param dtype: ``np.float64`` or ``np.float32``; Table II's
        single-precision rows use the latter.
    :returns: :class:`PricingResult` with the root value.
    """
    _validate_steps(steps)
    params = build_lattice_params(option, steps, family)
    dtype = np.dtype(dtype)

    up = dtype.type(params.up)
    down = dtype.type(params.down)
    pulldown = dtype.type(params.pulldown)
    rp = dtype.type(params.discounted_p_up)
    rq = dtype.type(params.discounted_p_down)
    strike = dtype.type(option.strike)
    sign = dtype.type(option.option_type.sign)

    # Leaf asset prices S[N, k] for k = 0..N (k = down moves).
    k = np.arange(steps + 1, dtype=dtype)
    spot = dtype.type(option.spot)
    prices = spot * up ** (dtype.type(steps) - k) * down**k
    values = np.maximum(sign * (prices - strike), dtype.type(0.0))

    american = option.is_american
    for t in range(steps - 1, -1, -1):
        # Continuation value for nodes k = 0..t: rp*V[t+1,k] + rq*V[t+1,k+1].
        values = rp * values[: t + 1] + rq * values[1 : t + 2]
        if american:
            # S[t, k] = S[t+1, k] / u for every family; the paper's
            # Equation (1) form d * S[t+1, k] holds only under CRR.
            prices = prices[: t + 1] * pulldown
            values = np.maximum(values, sign * (prices - strike))

    return PricingResult(
        price=float(values[0]),
        params=params,
        tree_nodes=params.interior_work_items + steps + 1,
    )


def price_binomial_scalar(
    option: Option,
    steps: int = 1024,
    family: LatticeFamily = LatticeFamily.CRR,
) -> PricingResult:
    """Loop-based double-precision pricer mirroring the C reference.

    Same recurrence as :func:`price_binomial` but written as explicit
    per-node loops; used as the independent ground truth in tests.
    """
    _validate_steps(steps)
    params = build_lattice_params(option, steps, family)
    sign = option.option_type.sign
    rp = params.discounted_p_up
    rq = params.discounted_p_down

    prices = [
        option.spot * params.up ** (steps - k) * params.down**k
        for k in range(steps + 1)
    ]
    values = [max(sign * (s - option.strike), 0.0) for s in prices]

    pulldown = params.pulldown
    for t in range(steps - 1, -1, -1):
        for k in range(t + 1):
            continuation = rp * values[k] + rq * values[k + 1]
            if option.is_american:
                prices[k] = pulldown * prices[k]
                continuation = max(continuation, sign * (prices[k] - option.strike))
            values[k] = continuation

    return PricingResult(
        price=values[0],
        params=params,
        tree_nodes=params.interior_work_items + steps + 1,
    )


def price_binomial_batch(*args, **kwargs):
    """Removed in repro 2.0 — use :func:`repro.api.price`.

    This stub exists only so stragglers get a migration pointer
    instead of an ``ImportError``:

    ==========================================  =====================================
    Before                                      After
    ==========================================  =====================================
    ``price_binomial_batch(opts, steps=N)``     ``repro.price(opts, steps=N).prices``
    ``price_binomial_batch(..., workers=4)``    ``repro.price(opts, steps=N,``
                                                ``            workers=4).prices``
    ``price_binomial_batch(...,``               ``repro.price(opts, steps=N,``
    ``    dtype=np.float32)``                   ``    precision="single").prices``
    ==========================================  =====================================

    :raises ReproError: always.
    """
    raise ReproError(
        "price_binomial_batch was removed in repro 2.0; use "
        "repro.price(options, steps=...).prices — see the migration "
        "table in repro.api")


def exercise_boundary(
    option: Option,
    steps: int = 256,
    family: LatticeFamily = LatticeFamily.CRR,
) -> np.ndarray:
    """Early-exercise boundary of an American option.

    For each time step ``t`` returns the critical asset price at which
    immediate exercise first becomes optimal (``nan`` where exercise is
    never optimal at that step).  Used by analysis examples; European
    contracts raise because they have no boundary.
    """
    if not option.is_american:
        raise FinanceError("exercise boundary is defined for American options only")
    _validate_steps(steps)
    params = build_lattice_params(option, steps, family)
    sign = option.option_type.sign
    rp = params.discounted_p_up
    rq = params.discounted_p_down

    k = np.arange(steps + 1, dtype=float)
    prices = option.spot * params.up ** (steps - k) * params.down**k
    values = np.maximum(sign * (prices - option.strike), 0.0)
    boundary = np.full(steps + 1, np.nan)
    boundary[steps] = option.strike  # at expiry the boundary is the strike

    for t in range(steps - 1, -1, -1):
        values = rp * values[: t + 1] + rq * values[1 : t + 2]
        prices = prices[: t + 1] * params.pulldown
        intrinsic = sign * (prices - option.strike)
        exercised = intrinsic >= values
        exercised &= intrinsic > 0.0
        if exercised.any():
            idx = np.nonzero(exercised)[0]
            # For a put the exercised region is the low-price side
            # (large k); for a call the high-price side (small k).
            edge = idx.max() if sign > 0 else idx.min()
            boundary[t] = prices[edge]
        values = np.maximum(values, intrinsic)

    return boundary
