"""Barone-Adesi & Whaley (1987) approximation for American options.

An independent control result: the BAW quadratic approximation prices
American options without a lattice, so the test suite can cross-check
the binomial pricer against a method with entirely different error
behaviour.  Accuracy is a few tenths of a percent for short-dated
options — good enough to catch gross lattice bugs while not being the
accuracy oracle itself.
"""

from __future__ import annotations

import math

from ..errors import ConvergenceError, FinanceError
from .black_scholes import bs_price, norm_cdf, norm_pdf
from .options import ExerciseStyle, Option, OptionType

__all__ = ["baw_price"]


def _euro_at(option: Option, spot: float) -> float:
    return bs_price(
        Option(
            spot=spot, strike=option.strike, rate=option.rate,
            volatility=option.volatility, maturity=option.maturity,
            option_type=option.option_type, exercise=ExerciseStyle.EUROPEAN,
            dividend_yield=option.dividend_yield,
        )
    )


def _critical_price(option: Option, q_exp: float, tol: float, max_iter: int) -> float:
    """Newton solve for the critical (early-exercise) asset price.

    Standard fixed-point iteration from Haug, *The Complete Guide to
    Option Pricing Formulas*, ch. "American options": iterate on the
    value-matching condition ``±(S* - K) = euro(S*) ± (1 - e^{(b-r)T}
    N(±d1)) S*/q`` with its analytic slope.
    """
    is_call = option.option_type is OptionType.CALL
    strike = option.strike
    r, b = option.rate, option.rate - option.dividend_yield
    sigma, t = option.volatility, option.maturity
    sig_sqrt_t = sigma * math.sqrt(t)
    disc_b = math.exp((b - r) * t)

    # Seed from the perpetual-exercise price blended toward the strike.
    n = 2.0 * b / (sigma * sigma)
    m = 2.0 * r / (sigma * sigma)
    sign = 1.0 if is_call else -1.0
    q_inf = 0.5 * (-(n - 1.0) + sign * math.sqrt((n - 1.0) ** 2 + 4.0 * m))
    s_inf = strike / (1.0 - 1.0 / q_inf) if abs(q_inf - 1.0) > 1e-12 else strike * 2.0
    if is_call:
        h = -(b * t + 2.0 * sig_sqrt_t) * strike / max(s_inf - strike, 1e-12)
        s = strike + (s_inf - strike) * (1.0 - math.exp(h))
    else:
        h = (b * t - 2.0 * sig_sqrt_t) * strike / max(strike - s_inf, 1e-12)
        s = s_inf + (strike - s_inf) * math.exp(h)

    for _ in range(max_iter):
        s = max(s, 1e-12)
        d1 = (math.log(s / strike) + (b + 0.5 * sigma * sigma) * t) / sig_sqrt_t
        euro = _euro_at(option, s)
        if is_call:
            cdf = norm_cdf(d1)
            lhs = s - strike
            rhs = euro + (1.0 - disc_b * cdf) * s / q_exp
            slope = (
                disc_b * cdf * (1.0 - 1.0 / q_exp)
                + (1.0 - disc_b * norm_pdf(d1) / sig_sqrt_t) / q_exp
            )
            s_next = (strike + rhs - slope * s) / (1.0 - slope)
        else:
            cdf = norm_cdf(-d1)
            lhs = strike - s
            rhs = euro - (1.0 - disc_b * cdf) * s / q_exp
            slope = (
                -disc_b * cdf * (1.0 - 1.0 / q_exp)
                - (1.0 + disc_b * norm_pdf(d1) / sig_sqrt_t) / q_exp
            )
            s_next = (strike - rhs + slope * s) / (1.0 + slope)
        if not (s_next > 0.0 and math.isfinite(s_next)):
            s_next = 0.5 * (s + strike)
        if abs(lhs - rhs) < tol * strike:
            return s
        s = s_next
    raise ConvergenceError("BAW critical-price iteration did not converge")


def baw_price(option: Option, tol: float = 1e-7, max_iter: int = 200) -> float:
    """Barone-Adesi & Whaley approximate American option value.

    For a call with zero dividend yield early exercise is never optimal,
    so the European value is returned exactly.  Otherwise the quadratic
    approximation adds an early-exercise premium ``A * (S/S*)^q`` below
    (put) / above (call) the critical price ``S*``.
    """
    if option.exercise is not ExerciseStyle.AMERICAN:
        raise FinanceError("baw_price values American contracts only")

    euro = bs_price(option.as_european())
    r, b = option.rate, option.rate - option.dividend_yield
    sigma, t = option.volatility, option.maturity

    if option.option_type is OptionType.CALL and option.dividend_yield <= 0.0:
        return euro  # Merton: never exercise early
    if r <= 0.0:
        # The quadratic approximation assumes r > 0; fall back to the
        # (tight in this regime) European value floor with intrinsic.
        return max(euro, option.intrinsic())

    sign = option.option_type.sign
    m = 2.0 * r / (sigma * sigma)
    n = 2.0 * b / (sigma * sigma)
    k_factor = 1.0 - math.exp(-r * t)
    q_exp = 0.5 * (
        -(n - 1.0) + sign * math.sqrt((n - 1.0) ** 2 + 4.0 * m / k_factor)
    )

    s_crit = _critical_price(option, q_exp, tol, max_iter)
    if sign * (option.spot - s_crit) >= 0.0:
        return option.intrinsic()

    sig_sqrt_t = sigma * math.sqrt(t)
    d1 = (math.log(s_crit / option.strike) + (b + 0.5 * sigma * sigma) * t) / sig_sqrt_t
    a_coeff = (
        sign
        * (s_crit / q_exp)
        * (1.0 - math.exp((b - r) * t) * norm_cdf(sign * d1))
    )
    premium = a_coeff * (option.spot / s_crit) ** q_exp
    return max(euro + premium, option.intrinsic())
