"""Lattice convergence analysis: the N=1024 trade-off.

Section V.B: *"The need for accuracy is met by representing all data in
double precision and by choosing a discretization step of T = 1024.
This provides a good compromise between speed, precision and hardware
restrictions (in terms of memory resources)."*

This module quantifies the precision leg of that compromise: the CRR
discretisation error as a function of ``N`` (against the analytic value
for European contracts, against a deep-lattice reference for American
ones), the classic odd/even oscillation of binomial prices, and
two-point Richardson extrapolation as the standard accuracy booster.
Experiment E14 combines it with the throughput model and the HLS
memory budget to reproduce the full three-way trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import FinanceError
from .binomial import price_binomial
from .black_scholes import bs_price
from .lattice import LatticeFamily
from .options import Option

__all__ = [
    "ConvergencePoint",
    "convergence_study",
    "richardson_extrapolation",
    "estimate_convergence_order",
]


@dataclass(frozen=True)
class ConvergencePoint:
    """Discretisation error of one lattice depth."""

    steps: int
    price: float
    error: float

    @property
    def abs_error(self) -> float:
        return abs(self.error)


def _reference_value(option: Option, reference_steps: int,
                     family: LatticeFamily) -> float:
    """Analytic value when one exists, deep lattice otherwise."""
    if not option.is_american:
        return bs_price(option)
    return price_binomial(option, reference_steps, family).price


def convergence_study(
    option: Option,
    steps_list: Sequence[int] = (32, 64, 128, 256, 512, 1024, 2048),
    family: LatticeFamily = LatticeFamily.CRR,
    reference_steps: int = 8192,
) -> list[ConvergencePoint]:
    """Price ``option`` at each depth and report the error.

    :param reference_steps: depth of the American reference lattice
        (must exceed every entry of ``steps_list``).
    """
    if not steps_list:
        raise FinanceError("steps_list cannot be empty")
    if max(steps_list) >= reference_steps and option.is_american:
        raise FinanceError(
            f"reference_steps ({reference_steps}) must exceed the deepest "
            f"study point ({max(steps_list)})"
        )
    reference = _reference_value(option, reference_steps, family)
    points = []
    for steps in steps_list:
        price = price_binomial(option, steps, family).price
        points.append(
            ConvergencePoint(steps=steps, price=price, error=price - reference)
        )
    return points


def richardson_extrapolation(
    option: Option,
    steps: int,
    family: LatticeFamily = LatticeFamily.CRR,
    smooth: bool = True,
) -> float:
    """Two-point Richardson extrapolation, ``2*P(2N) - P(N)``.

    CRR converges at first order in ``1/N``, but with the well-known
    odd/even oscillation (the strike's position between lattice nodes
    shifts with ``N``), which can make naive extrapolation *worse* at
    unlucky depths.  With ``smooth=True`` (default) each depth is first
    parity-smoothed as ``(P(N) + P(N+1)) / 2`` — the standard remedy —
    before extrapolating; on average over depths this buys roughly one
    lattice doubling without the deeper (and, on the FPGA,
    memory-hungrier) tree.
    """
    if steps < 2:
        raise FinanceError("extrapolation needs steps >= 2")

    def level(n: int) -> float:
        value = price_binomial(option, n, family).price
        if smooth:
            value = 0.5 * (value + price_binomial(option, n + 1, family).price)
        return value

    return 2.0 * level(2 * steps) - level(steps)


def estimate_convergence_order(points: Sequence[ConvergencePoint]) -> float:
    """Least-squares slope of log|error| vs log N (expected ~ -1).

    Points whose error underflows (|e| < 1e-14) are skipped; at least
    two usable points are required.
    """
    usable = [(p.steps, p.abs_error) for p in points if p.abs_error > 1e-14]
    if len(usable) < 2:
        raise FinanceError("need at least two non-degenerate points")
    log_n = np.log([n for n, _ in usable])
    log_e = np.log([e for _, e in usable])
    slope = np.polyfit(log_n, log_e, 1)[0]
    return float(slope)
