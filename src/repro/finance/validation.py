"""Accuracy metrics used by the paper's evaluation.

Table II reports an RMSE (root-mean-square error) per implementation,
computed against the double-precision software reference.  The paper
prints "~1e-3" for the FPGA double and software single rows and "0"
where results match the reference to printing precision; the helpers
here compute the number and also classify it into the paper's notation
for table regeneration.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import FinanceError

__all__ = ["rmse", "max_abs_error", "classify_rmse", "relative_rmse"]


def _as_pair(reference, candidate) -> tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(reference, dtype=np.float64)
    cand = np.asarray(candidate, dtype=np.float64)
    if ref.shape != cand.shape:
        raise FinanceError(
            f"shape mismatch: reference {ref.shape} vs candidate {cand.shape}"
        )
    if ref.size == 0:
        raise FinanceError("cannot compute an error metric on empty arrays")
    return ref, cand


def rmse(reference, candidate) -> float:
    """Root-mean-square error of ``candidate`` against ``reference``."""
    ref, cand = _as_pair(reference, candidate)
    return float(np.sqrt(np.mean((cand - ref) ** 2)))


def relative_rmse(reference, candidate, floor: float = 1e-12) -> float:
    """RMSE of relative errors (reference values below ``floor`` skipped)."""
    ref, cand = _as_pair(reference, candidate)
    mask = np.abs(ref) > floor
    if not mask.any():
        raise FinanceError("all reference values below floor; relative RMSE undefined")
    rel = (cand[mask] - ref[mask]) / ref[mask]
    return float(np.sqrt(np.mean(rel**2)))


def max_abs_error(reference, candidate) -> float:
    """Worst-case absolute error."""
    ref, cand = _as_pair(reference, candidate)
    return float(np.max(np.abs(cand - ref)))


def classify_rmse(value: float, exact_threshold: float = 1e-9) -> str:
    """Render an RMSE in the paper's Table II notation.

    Values at or below ``exact_threshold`` print as ``"0"`` (the paper's
    "matches the reference"); otherwise the *nearest* order of magnitude
    is shown in ``"~1e-3"`` style (9.6e-4 belongs to the 1e-3 decade).
    """
    if value < 0 or not math.isfinite(value):
        raise FinanceError(f"RMSE must be finite and >= 0, got {value}")
    if value <= exact_threshold:
        return "0"
    exponent = round(math.log10(value))
    return f"~1e{exponent:d}"
