"""Implied-volatility solvers — the paper's motivating use case.

Section I of the paper: a trader observes a market price for an option
and wants the *implied* volatility — the ``sigma`` at which the pricing
model reproduces that price.  One volatility curve needs ~2 000 option
evaluations, and the accelerator's 2 000 options/s target exists so a
curve can be refreshed every second.

This module provides the root solvers on top of any pricing engine
(analytic Black-Scholes for European, binomial for American) plus the
curve driver used by ``examples/volatility_curve.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import ConvergenceError, FinanceError
from .binomial import price_binomial
from .black_scholes import bs_price
from .options import Option

__all__ = [
    "implied_vol_bisection",
    "implied_vol_brent",
    "implied_vol_newton",
    "implied_volatility",
    "VolCurvePoint",
    "implied_vol_curve",
]

PriceFn = Callable[[Option], float]
"""A pricing engine: maps a contract (with candidate vol) to a price."""


def _default_engine(option: Option, steps: int) -> PriceFn:
    """Binomial engine for American contracts, analytic for European."""
    if option.is_american:
        return lambda opt: price_binomial(opt, steps=steps).price
    return bs_price


def _bracket(option: Option, target: float, price_fn: PriceFn,
             lo: float, hi: float) -> tuple[float, float]:
    """Expand ``[lo, hi]`` until the target price is bracketed.

    A CRR lattice rejects volatilities below ``(r - q) * sqrt(dt)`` (the
    risk-neutral probability leaves (0, 1)), so the lower edge is first
    raised until the engine accepts it.
    """
    f_lo = _try_eval(option, price_fn, lo)
    while f_lo is None and lo < hi:
        lo *= 4.0
        f_lo = _try_eval(option, price_fn, lo)
    if f_lo is None:
        raise ConvergenceError("no volatility in range is accepted by the engine")
    f_lo -= target
    f_hi = price_fn(option.with_volatility(hi)) - target
    expansions = 0
    while f_lo * f_hi > 0.0 and expansions < 12:
        if f_hi < 0.0:  # even max vol too cheap -> widen upward
            hi *= 2.0
            f_hi = price_fn(option.with_volatility(hi)) - target
        else:  # even min vol too expensive -> shrink downward
            shrunk = _try_eval(option, price_fn, lo * 0.5)
            if shrunk is None:
                break  # engine rejects lower vols; cannot shrink further
            lo *= 0.5
            f_lo = shrunk - target
        expansions += 1
    if f_lo * f_hi > 0.0:
        raise ConvergenceError(
            f"could not bracket implied vol for target price {target:.6g} "
            f"in sigma range [{lo:.4g}, {hi:.4g}]"
        )
    return lo, hi


def _try_eval(option: Option, price_fn: PriceFn, sigma: float) -> float | None:
    """Evaluate the engine at ``sigma``; None when the lattice rejects it."""
    try:
        return price_fn(option.with_volatility(sigma))
    except FinanceError:
        return None


def implied_vol_bisection(
    option: Option,
    market_price: float,
    price_fn: PriceFn | None = None,
    steps: int = 1024,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> float:
    """Robust bisection solve for the implied volatility.

    Bisection is the paper-faithful choice: it needs only price
    evaluations (which the accelerator provides in bulk) and converges
    unconditionally once bracketed.
    """
    _check_target(option, market_price)
    fn = price_fn or _default_engine(option, steps)
    lo, hi = _bracket(option, market_price, fn, 1e-4, 4.0)
    f_lo = fn(option.with_volatility(lo)) - market_price
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        f_mid = fn(option.with_volatility(mid)) - market_price
        if abs(f_mid) < tol or (hi - lo) < tol:
            return mid
        if f_lo * f_mid <= 0.0:
            hi = mid
        else:
            lo, f_lo = mid, f_mid
    raise ConvergenceError(f"bisection did not converge in {max_iter} iterations")


def implied_vol_brent(
    option: Option,
    market_price: float,
    price_fn: PriceFn | None = None,
    steps: int = 1024,
    tol: float = 1e-10,
) -> float:
    """Brent's method (scipy) — fewer evaluations than bisection."""
    from scipy.optimize import brentq

    _check_target(option, market_price)
    fn = price_fn or _default_engine(option, steps)
    lo, hi = _bracket(option, market_price, fn, 1e-4, 4.0)
    return float(
        brentq(lambda sig: fn(option.with_volatility(sig)) - market_price, lo, hi,
               xtol=tol)
    )


def implied_vol_newton(
    option: Option,
    market_price: float,
    initial_guess: float = 0.3,
    tol: float = 1e-10,
    max_iter: int = 60,
) -> float:
    """Newton-Raphson on the analytic Black-Scholes vega.

    Only valid for European contracts (needs the analytic vega); falls
    back on callers to use bisection/Brent for American options.
    """
    from .black_scholes import bs_greeks

    if option.is_american:
        raise FinanceError("Newton implied vol requires a European contract")
    _check_target(option, market_price)
    sigma = initial_guess
    for _ in range(max_iter):
        candidate = option.with_volatility(sigma)
        diff = bs_price(candidate) - market_price
        if abs(diff) < tol:
            return sigma
        vega = bs_greeks(candidate).vega
        if vega < 1e-12:
            raise ConvergenceError("vanishing vega; switch to bisection")
        sigma = sigma - diff / vega
        if not (1e-6 < sigma < 10.0) or not math.isfinite(sigma):
            raise ConvergenceError("Newton iterate left the valid sigma range")
    raise ConvergenceError(f"Newton did not converge in {max_iter} iterations")


def implied_volatility(
    option: Option,
    market_price: float,
    method: str = "auto",
    price_fn: PriceFn | None = None,
    steps: int = 1024,
) -> float:
    """Front door: pick a solver by name or automatically.

    ``"auto"`` uses Newton for European contracts (fast, analytic vega)
    and Brent for American ones.
    """
    if method == "auto":
        method = "newton" if (not option.is_american and price_fn is None) else "brent"
    if method == "bisection":
        return implied_vol_bisection(option, market_price, price_fn, steps)
    if method == "brent":
        return implied_vol_brent(option, market_price, price_fn, steps)
    if method == "newton":
        if price_fn is not None:
            raise FinanceError("Newton solver does not accept a custom price_fn")
        return implied_vol_newton(option, market_price)
    raise FinanceError(f"unknown implied-vol method: {method!r}")


def _check_target(option: Option, market_price: float) -> None:
    if not (market_price > 0.0 and math.isfinite(market_price)):
        raise FinanceError(f"market price must be finite and > 0, got {market_price}")
    intrinsic = option.intrinsic()
    if option.is_american and market_price < intrinsic - 1e-12:
        raise FinanceError(
            f"market price {market_price:.6g} below intrinsic {intrinsic:.6g}: "
            "arbitrage — no implied volatility exists"
        )


@dataclass(frozen=True)
class VolCurvePoint:
    """One strike of an implied-volatility curve."""

    strike: float
    market_price: float
    implied_vol: float
    evaluations: int


def implied_vol_curve(
    base_option: Option,
    strikes: Sequence[float],
    market_prices: Sequence[float],
    price_fn: PriceFn | None = None,
    steps: int = 1024,
    method: str = "brent",
) -> list[VolCurvePoint]:
    """Solve the implied vol at every strike of a curve.

    This is the end-to-end trader scenario: ``len(strikes)`` solves,
    each costing tens of pricing-engine evaluations — the workload the
    accelerator's 2 000 options/s budget is sized for.
    """
    if len(strikes) != len(market_prices):
        raise FinanceError("strikes and market_prices must have equal length")
    points: list[VolCurvePoint] = []
    for strike, target in zip(strikes, market_prices):
        option = base_option.with_strike(float(strike))
        calls = [0]

        def counted(opt: Option, _calls=calls, _fn=price_fn or _default_engine(option, steps)) -> float:
            _calls[0] += 1
            return _fn(opt)

        vol = implied_volatility(option, float(target), method=method,
                                 price_fn=counted, steps=steps)
        points.append(
            VolCurvePoint(
                strike=float(strike),
                market_price=float(target),
                implied_vol=vol,
                evaluations=calls[0],
            )
        )
    return points
