"""Option contract definitions and payoff functions.

The paper prices *American* options (right to exercise at any time up to
expiry) with the binomial model, using *European* options (exercise only
at expiry) as the analytically-checkable base case.  This module defines
the immutable contract description shared by every pricer in the
library, plus vectorised payoff helpers.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

import numpy as np

from ..errors import FinanceError

__all__ = [
    "OptionType",
    "ExerciseStyle",
    "Option",
    "OptionArrays",
    "option_arrays",
    "intrinsic_value",
    "payoff",
]


class OptionType(enum.Enum):
    """Whether the contract is a right to buy (call) or sell (put)."""

    CALL = "call"
    PUT = "put"

    @property
    def sign(self) -> int:
        """+1 for calls, -1 for puts; multiplies ``S - K`` in payoffs."""
        return 1 if self is OptionType.CALL else -1


class ExerciseStyle(enum.Enum):
    """When the holder may exercise the option."""

    EUROPEAN = "european"
    AMERICAN = "american"


def _coerce_enum(value, enum_cls, field):
    """Return ``value`` as a member of ``enum_cls``, accepting strings.

    Strings are matched case-insensitively against the enum *values*
    (``"call"``, ``"put"``, ``"european"``, ``"american"``).  Anything
    else raises :class:`~repro.errors.FinanceError` at construction,
    where the mistake is visible, instead of an ``AttributeError``
    deep inside a pricer.
    """
    if isinstance(value, enum_cls):
        return value
    if isinstance(value, str):
        try:
            return enum_cls(value.lower())
        except ValueError:
            pass
    valid = ", ".join(repr(m.value) for m in enum_cls)
    raise FinanceError(
        f"{field} must be {enum_cls.__name__} or one of {valid}, "
        f"got {value!r}"
    )


@dataclass(frozen=True)
class Option:
    """Immutable description of a vanilla equity option contract.

    Parameters mirror the standard Black-Scholes/CRR setting used in the
    paper (risk-neutral valuation, constant volatility and rate):

    :param spot: current underlying price ``S0`` (must be > 0).
    :param strike: strike price ``K`` (must be > 0).
    :param rate: continuously-compounded risk-free rate ``r``.
    :param volatility: annualised volatility ``sigma`` (must be > 0).
    :param maturity: time to expiry ``T`` in years (must be > 0).
    :param option_type: :class:`OptionType.CALL` or ``PUT``; the enum
        value strings (``"call"`` / ``"put"``, case-insensitive) are
        also accepted and coerced at construction.
    :param exercise: :class:`ExerciseStyle.AMERICAN` (paper's target) or
        ``EUROPEAN``; strings (``"american"`` / ``"european"``) are
        coerced the same way.
    :param dividend_yield: continuous dividend yield ``q`` (default 0).
    """

    spot: float
    strike: float
    rate: float
    volatility: float
    maturity: float
    option_type: OptionType = OptionType.CALL
    exercise: ExerciseStyle = ExerciseStyle.AMERICAN
    dividend_yield: float = 0.0

    def __post_init__(self) -> None:
        # Coerce string spellings up front: without this,
        # Option(option_type="put") constructs silently and only crashes
        # much later with AttributeError when a pricer asks for .sign.
        object.__setattr__(
            self, "option_type", _coerce_enum(self.option_type, OptionType,
                                              "option_type"))
        object.__setattr__(
            self, "exercise", _coerce_enum(self.exercise, ExerciseStyle,
                                           "exercise"))
        if not (self.spot > 0.0 and math.isfinite(self.spot)):
            raise FinanceError(f"spot must be finite and > 0, got {self.spot}")
        if not (self.strike > 0.0 and math.isfinite(self.strike)):
            raise FinanceError(f"strike must be finite and > 0, got {self.strike}")
        if not (self.volatility > 0.0 and math.isfinite(self.volatility)):
            raise FinanceError(
                f"volatility must be finite and > 0, got {self.volatility}"
            )
        if not (self.maturity > 0.0 and math.isfinite(self.maturity)):
            raise FinanceError(f"maturity must be finite and > 0, got {self.maturity}")
        if not math.isfinite(self.rate):
            raise FinanceError(f"rate must be finite, got {self.rate}")
        if not math.isfinite(self.dividend_yield):
            raise FinanceError(
                f"dividend_yield must be finite, got {self.dividend_yield}"
            )

    # -- convenience constructors / derived views --------------------------

    @property
    def is_call(self) -> bool:
        """True when the contract is a call."""
        return self.option_type is OptionType.CALL

    @property
    def is_american(self) -> bool:
        """True when early exercise is allowed."""
        return self.exercise is ExerciseStyle.AMERICAN

    def with_volatility(self, volatility: float) -> "Option":
        """Return a copy with a different volatility (implied-vol loop)."""
        return replace(self, volatility=volatility)

    def with_strike(self, strike: float) -> "Option":
        """Return a copy with a different strike (curve construction)."""
        return replace(self, strike=strike)

    def as_european(self) -> "Option":
        """Return the European twin of this contract."""
        return replace(self, exercise=ExerciseStyle.EUROPEAN)

    def as_american(self) -> "Option":
        """Return the American twin of this contract."""
        return replace(self, exercise=ExerciseStyle.AMERICAN)

    def intrinsic(self) -> float:
        """Immediate-exercise value at the current spot."""
        return intrinsic_value(self.spot, self.strike, self.option_type)

    def moneyness(self) -> float:
        """Spot/strike ratio, the usual curve x-axis."""
        return self.spot / self.strike


@dataclass(frozen=True)
class OptionArrays:
    """Column view of a batch of contracts (one array per field).

    This is the structure-of-arrays form the vectorised parameter
    builders and the batched pricing engine operate on; element ``i``
    of every array describes ``options[i]``.
    """

    spot: np.ndarray
    strike: np.ndarray
    rate: np.ndarray
    volatility: np.ndarray
    maturity: np.ndarray
    dividend_yield: np.ndarray
    sign: np.ndarray

    def __len__(self) -> int:
        return self.spot.shape[0]


def _validate_columns(arrays: OptionArrays) -> None:
    """Reject NaN/inf and non-positive market data, naming the index.

    :class:`Option` already validates at construction, but batches
    assembled from feeds, deserialised rows or duck-typed contract
    objects can bypass that — and one NaN spot silently poisons every
    price in the chunk it lands in.  One vectorised pass per column
    keeps the check O(n) with no Python-level loop in the clean case.
    """
    checks = (
        ("spot", arrays.spot, True),
        ("strike", arrays.strike, True),
        ("volatility", arrays.volatility, True),
        ("maturity", arrays.maturity, True),
        ("rate", arrays.rate, False),
        ("dividend_yield", arrays.dividend_yield, False),
    )
    for name, column, positive in checks:
        bad = ~np.isfinite(column)
        if positive:
            bad |= column <= 0.0
        if bad.any():
            index = int(np.argmax(bad))
            requirement = "finite and > 0" if positive else "finite"
            raise FinanceError(
                f"option {index}: {name} must be {requirement}, "
                f"got {column[index]}"
            )


def option_arrays(options) -> OptionArrays:
    """Transpose a sequence of :class:`Option` into field arrays.

    Each field is gathered with a single C-level ``fromiter`` pass, so
    building the columns for thousands of options never materialises a
    per-option Python row.  Columns are validated on the way out —
    NaN/inf or non-positive spot, strike, volatility or maturity raise
    :class:`~repro.errors.FinanceError` naming the offending option
    index, so bad market data is caught before it poisons a chunk.
    """
    options = list(options)
    n = len(options)

    def column(getter) -> np.ndarray:
        return np.fromiter((getter(o) for o in options), dtype=np.float64,
                           count=n)

    arrays = OptionArrays(
        spot=column(lambda o: o.spot),
        strike=column(lambda o: o.strike),
        rate=column(lambda o: o.rate),
        volatility=column(lambda o: o.volatility),
        maturity=column(lambda o: o.maturity),
        dividend_yield=column(lambda o: o.dividend_yield),
        sign=column(lambda o: o.option_type.sign),
    )
    _validate_columns(arrays)
    return arrays


def intrinsic_value(spot, strike, option_type: OptionType):
    """Immediate-exercise (intrinsic) value ``max(±(S-K), 0)``.

    Accepts scalars or numpy arrays for ``spot``/``strike`` and
    broadcasts; the result has the broadcast shape.
    """
    gap = option_type.sign * (np.asarray(spot, dtype=float) - strike)
    value = np.maximum(gap, 0.0)
    if np.ndim(spot) == 0 and np.ndim(strike) == 0:
        return float(value)
    return value


def payoff(option: Option, terminal_prices):
    """Contract payoff at expiry for one or many terminal prices."""
    return intrinsic_value(terminal_prices, option.strike, option.option_type)
