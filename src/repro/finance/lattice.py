"""Binomial-lattice parameterisations (CRR, Jarrow-Rudd, Tian).

The paper uses the Cox-Ross-Rubinstein (CRR) recombining tree
[Cox, Ross, Rubinstein 1979]: over a step ``dt`` the asset moves up by
``u = exp(sigma*sqrt(dt))`` or down by ``d = 1/u`` with risk-neutral
probabilities ``p`` and ``q = 1 - p``.  Because ``u*d = 1`` the tree
recombines, so at step ``t`` there are only ``t + 1`` distinct nodes.

The paper indexes a node as ``(t, k)``; this library fixes the
convention *k = number of down moves*, so

    ``S[t, k] = S0 * u**(t - k) * d**k = S0 * u**(t - 2k)``

and, holding the row ``k`` fixed while stepping backward in time,

    ``S[t, k] = S[t+1, k] / u``

For CRR — and only for CRR — ``u*d = 1`` turns that division into the
multiplication ``S[t, k] = d * S[t+1, k]``, which is the first
recurrence of the paper's Equation (1) and the update kernel IV.B
applies in private memory.  The paper's form is therefore
*CRR-specific*: applied to a drifted tree (Jarrow-Rudd, Tian) it walks
the spot ladder down the wrong factor and mis-prices American
contracts by O(0.1-1) on a ~15 price at N=512.  Every pricer in this
library rolls the spot by the family-correct :attr:`LatticeParams.pulldown`
(``1/u``; bit-identical to ``d`` under CRR because CRR constructs
``d = 1/u`` exactly).

Two alternative drift choices are provided as extensions (Jarrow-Rudd
equal-probability and Tian moment-matching trees); they share the same
backward induction and let the library compare lattice families.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import FinanceError
from .options import Option

__all__ = [
    "LatticeFamily",
    "LatticeParams",
    "LatticeArrays",
    "build_lattice_params",
    "build_lattice_arrays",
    "asset_prices_at_step",
]


class LatticeFamily(enum.Enum):
    """Supported recombining-binomial parameterisations."""

    CRR = "crr"
    JARROW_RUDD = "jarrow-rudd"
    TIAN = "tian"


@dataclass(frozen=True)
class LatticeParams:
    """Per-step constants of a recombining binomial tree.

    :param steps: number of time steps ``N`` (tree has ``N+1`` levels).
    :param dt: step length ``T / N`` in years.
    :param up: up factor ``u``.
    :param down: down factor ``d``.
    :param p_up: risk-neutral probability of an up move.
    :param discount: per-step discount factor ``exp(-r * dt)``.
    :param family: which parameterisation produced these constants.

    Derived quantities used by the kernels are exposed as properties:
    :attr:`discounted_p_up` / :attr:`discounted_p_down` are the ``rp`` /
    ``rq`` coefficients of the paper's Equation (1).
    """

    steps: int
    dt: float
    up: float
    down: float
    p_up: float
    discount: float
    family: LatticeFamily = LatticeFamily.CRR

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise FinanceError(f"steps must be >= 1, got {self.steps}")
        if not 0.0 < self.p_up < 1.0:
            raise FinanceError(
                f"risk-neutral probability out of (0, 1): p={self.p_up}; "
                "the step is too coarse for this rate/volatility"
            )
        if not (self.up > self.down > 0.0):
            raise FinanceError(f"need up > down > 0, got u={self.up}, d={self.down}")

    @property
    def p_down(self) -> float:
        """Probability of a down move, ``q = 1 - p``."""
        return 1.0 - self.p_up

    @property
    def discounted_p_up(self) -> float:
        """``rp`` of Equation (1): discount-weighted up probability."""
        return self.discount * self.p_up

    @property
    def discounted_p_down(self) -> float:
        """``rq`` of Equation (1): discount-weighted down probability."""
        return self.discount * self.p_down

    @property
    def pulldown(self) -> float:
        """Factor mapping ``S[t+1, k]`` to ``S[t, k]`` at fixed ``k``.

        ``S[t, k] = S0 u^(t-k) d^k = S[t+1, k] / u`` for *every*
        lattice family.  The paper's Equation (1) writes this as
        ``d * S[t+1, k]``, which holds only under the CRR
        recombination ``u*d = 1`` — for CRR this property is
        bit-identical to :attr:`down` (CRR constructs ``d = 1/u``
        exactly), while for Jarrow-Rudd/Tian it is the correction
        that keeps rolled spot ladders on the tree.
        """
        return 1.0 / self.up

    @property
    def levels(self) -> int:
        """Number of tree levels including the root (``steps + 1``)."""
        return self.steps + 1

    @property
    def node_count(self) -> int:
        """Total recombining-tree nodes, ``(N+1)(N+2)/2``.

        The paper's work-item count for kernel IV.A, ``N(N+1)/2``,
        counts only the *interior* levels it enqueues per batch; this
        property counts every node including the leaves.
        """
        return (self.steps + 1) * (self.steps + 2) // 2

    @property
    def interior_work_items(self) -> int:
        """Kernel IV.A's enqueued work-items per batch, ``N(N+1)/2``."""
        return self.steps * (self.steps + 1) // 2


def build_lattice_params(
    option: Option,
    steps: int,
    family: LatticeFamily = LatticeFamily.CRR,
) -> LatticeParams:
    """Compute the per-step tree constants for ``option``.

    :param option: the contract supplying ``r``, ``q``, ``sigma``, ``T``.
    :param steps: time discretisation ``N`` (the paper uses 1024).
    :param family: lattice parameterisation; default CRR as in the paper.
    :raises FinanceError: if the implied risk-neutral probability falls
        outside ``(0, 1)`` (step too coarse for the drift).
    """
    if steps < 1:
        raise FinanceError(f"steps must be >= 1, got {steps}")
    dt = option.maturity / steps
    sig_sqrt_dt = option.volatility * math.sqrt(dt)
    growth = math.exp((option.rate - option.dividend_yield) * dt)

    if family is LatticeFamily.CRR:
        up = math.exp(sig_sqrt_dt)
        down = 1.0 / up
        p_up = (growth - down) / (up - down)
    elif family is LatticeFamily.JARROW_RUDD:
        drift = (option.rate - option.dividend_yield - 0.5 * option.volatility**2) * dt
        up = math.exp(drift + sig_sqrt_dt)
        down = math.exp(drift - sig_sqrt_dt)
        # Jarrow-Rudd matches the lognormal drift so each move is
        # (almost) equally likely; using the exact risk-neutral value
        # keeps the tree arbitrage-free at any N.
        p_up = (growth - down) / (up - down)
    elif family is LatticeFamily.TIAN:
        v = math.exp(option.volatility**2 * dt)
        root = math.sqrt(v * v + 2.0 * v - 3.0)
        up = 0.5 * growth * v * (v + 1.0 + root)
        down = 0.5 * growth * v * (v + 1.0 - root)
        p_up = (growth - down) / (up - down)
    else:  # pragma: no cover - exhaustive over enum
        raise FinanceError(f"unknown lattice family: {family}")

    return LatticeParams(
        steps=steps,
        dt=dt,
        up=up,
        down=down,
        p_up=p_up,
        discount=math.exp(-option.rate * dt),
        family=family,
    )


@dataclass(frozen=True)
class LatticeArrays:
    """Per-step tree constants for a whole batch, as parallel arrays.

    The array-native counterpart of :class:`LatticeParams`: element
    ``i`` of every field holds the constant of option ``i``.  Produced
    by :func:`build_lattice_arrays`, consumed by the kernel parameter
    builders and the batched pricing engine so that parameter
    construction never loops over options in Python.
    """

    steps: int
    family: LatticeFamily
    dt: np.ndarray
    up: np.ndarray
    down: np.ndarray
    p_up: np.ndarray
    discount: np.ndarray

    def __len__(self) -> int:
        return self.up.shape[0]

    @property
    def p_down(self) -> np.ndarray:
        """Probability of a down move, ``q = 1 - p``."""
        return 1.0 - self.p_up

    @property
    def discounted_p_up(self) -> np.ndarray:
        """``rp`` of Equation (1): discount-weighted up probability."""
        return self.discount * self.p_up

    @property
    def discounted_p_down(self) -> np.ndarray:
        """``rq`` of Equation (1): discount-weighted down probability."""
        return self.discount * self.p_down

    @property
    def pulldown(self) -> np.ndarray:
        """Per-option ``S[t+1, k] -> S[t, k]`` roll factor, ``1/u``.

        Array twin of :attr:`LatticeParams.pulldown`: bit-identical to
        :attr:`down` under CRR (where ``d = 1/u`` by construction),
        the family-correct spot update for Jarrow-Rudd and Tian.
        """
        return 1.0 / self.up


def build_lattice_arrays(
    options: Sequence[Option],
    steps: int,
    family: LatticeFamily = LatticeFamily.CRR,
) -> LatticeArrays:
    """Vectorised :func:`build_lattice_params` over a batch of options.

    Performs the same operation sequence as the scalar builder but with
    numpy array arithmetic, so building parameters for thousands of
    options costs a handful of array operations instead of a Python
    loop.  (numpy's vector ``exp`` may differ from ``math.exp`` in the
    last ulp; every batch consumer — kernel simulators, coroutine
    hosts and the pricing engine — goes through this one builder, so
    all fast paths stay bit-identical to each other.)

    :raises FinanceError: if ``steps < 1`` or any option's implied
        risk-neutral probability falls outside ``(0, 1)``.
    """
    if steps < 1:
        raise FinanceError(f"steps must be >= 1, got {steps}")
    from .options import option_arrays

    fields = option_arrays(options)
    dt = fields.maturity / steps
    sig_sqrt_dt = fields.volatility * np.sqrt(dt)
    growth = np.exp((fields.rate - fields.dividend_yield) * dt)

    if family is LatticeFamily.CRR:
        up = np.exp(sig_sqrt_dt)
        down = 1.0 / up
        p_up = (growth - down) / (up - down)
    elif family is LatticeFamily.JARROW_RUDD:
        drift = (
            fields.rate - fields.dividend_yield - 0.5 * fields.volatility**2
        ) * dt
        up = np.exp(drift + sig_sqrt_dt)
        down = np.exp(drift - sig_sqrt_dt)
        p_up = (growth - down) / (up - down)
    elif family is LatticeFamily.TIAN:
        v = np.exp(fields.volatility**2 * dt)
        root = np.sqrt(v * v + 2.0 * v - 3.0)
        up = 0.5 * growth * v * (v + 1.0 + root)
        down = 0.5 * growth * v * (v + 1.0 - root)
        p_up = (growth - down) / (up - down)
    else:  # pragma: no cover - exhaustive over enum
        raise FinanceError(f"unknown lattice family: {family}")

    bad = ~((p_up > 0.0) & (p_up < 1.0))
    if bad.any():
        i = int(np.argmax(bad))
        raise FinanceError(
            f"risk-neutral probability out of (0, 1): p={p_up[i]} "
            f"(option {i}); the step is too coarse for this "
            "rate/volatility"
        )
    if not ((up > down) & (down > 0.0)).all():
        i = int(np.argmax(~((up > down) & (down > 0.0))))
        raise FinanceError(
            f"need up > down > 0, got u={up[i]}, d={down[i]} (option {i})"
        )

    return LatticeArrays(
        steps=steps,
        family=family,
        dt=dt,
        up=up,
        down=down,
        p_up=p_up,
        discount=np.exp(-fields.rate * dt),
    )


def asset_prices_at_step(option: Option, params: LatticeParams, t: int) -> np.ndarray:
    """Asset prices ``S[t, k]`` for ``k = 0..t`` (k = down-move count).

    Index 0 is the highest price (all up moves); index ``t`` the lowest.
    This is the row layout the kernels iterate over and matches
    ``S[t, k] = S0 * u**(t-k) * d**k``.
    """
    if not 0 <= t <= params.steps:
        raise FinanceError(f"step {t} outside [0, {params.steps}]")
    k = np.arange(t + 1, dtype=float)
    return option.spot * params.up ** (t - k) * params.down**k
