"""Black-Scholes analytic prices and greeks (European validation oracle).

The binomial tree converges to the Black-Scholes value for European
contracts as ``N -> inf``; the library uses this module as the
analytical oracle for convergence tests and as the fast engine inside
the implied-volatility solver's initial guess.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import FinanceError
from .options import ExerciseStyle, Option, OptionType

__all__ = ["bs_price", "bs_greeks", "BSGreeks", "norm_cdf", "norm_pdf"]

_SQRT_2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def norm_cdf(x: float) -> float:
    """Standard normal CDF via the complementary error function."""
    return 0.5 * math.erfc(-x / _SQRT_2)


def norm_pdf(x: float) -> float:
    """Standard normal density."""
    return _INV_SQRT_2PI * math.exp(-0.5 * x * x)


def _d1_d2(option: Option) -> tuple[float, float]:
    sig_sqrt_t = option.volatility * math.sqrt(option.maturity)
    d1 = (
        math.log(option.spot / option.strike)
        + (option.rate - option.dividend_yield + 0.5 * option.volatility**2)
        * option.maturity
    ) / sig_sqrt_t
    return d1, d1 - sig_sqrt_t


def bs_price(option: Option) -> float:
    """Black-Scholes value of a *European* option.

    :raises FinanceError: for American contracts, which have no
        closed-form value (that is the point of the paper's binomial
        accelerator); convert with :meth:`Option.as_european` first if a
        European lower bound is wanted.
    """
    if option.exercise is not ExerciseStyle.EUROPEAN:
        raise FinanceError(
            "bs_price only values European contracts; American options "
            "need a lattice (see repro.finance.binomial)"
        )
    d1, d2 = _d1_d2(option)
    disc_spot = option.spot * math.exp(-option.dividend_yield * option.maturity)
    disc_strike = option.strike * math.exp(-option.rate * option.maturity)
    if option.option_type is OptionType.CALL:
        return disc_spot * norm_cdf(d1) - disc_strike * norm_cdf(d2)
    return disc_strike * norm_cdf(-d2) - disc_spot * norm_cdf(-d1)


@dataclass(frozen=True)
class BSGreeks:
    """First- and second-order Black-Scholes sensitivities."""

    delta: float
    gamma: float
    vega: float
    theta: float
    rho: float


def bs_greeks(option: Option) -> BSGreeks:
    """Analytic greeks of a European option (same caveat as bs_price)."""
    if option.exercise is not ExerciseStyle.EUROPEAN:
        raise FinanceError("bs_greeks only applies to European contracts")
    d1, d2 = _d1_d2(option)
    sqrt_t = math.sqrt(option.maturity)
    div_disc = math.exp(-option.dividend_yield * option.maturity)
    rate_disc = math.exp(-option.rate * option.maturity)
    pdf_d1 = norm_pdf(d1)

    gamma = div_disc * pdf_d1 / (option.spot * option.volatility * sqrt_t)
    vega = option.spot * div_disc * pdf_d1 * sqrt_t
    common_theta = -option.spot * div_disc * pdf_d1 * option.volatility / (2 * sqrt_t)

    if option.option_type is OptionType.CALL:
        delta = div_disc * norm_cdf(d1)
        theta = (
            common_theta
            - option.rate * option.strike * rate_disc * norm_cdf(d2)
            + option.dividend_yield * option.spot * div_disc * norm_cdf(d1)
        )
        rho = option.strike * option.maturity * rate_disc * norm_cdf(d2)
    else:
        delta = -div_disc * norm_cdf(-d1)
        theta = (
            common_theta
            + option.rate * option.strike * rate_disc * norm_cdf(-d2)
            - option.dividend_yield * option.spot * div_disc * norm_cdf(-d1)
        )
        rho = -option.strike * option.maturity * rate_disc * norm_cdf(-d2)

    return BSGreeks(delta=delta, gamma=gamma, vega=vega, theta=theta, rho=rho)
