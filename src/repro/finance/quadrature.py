"""Quadrature pricing — the method Jin et al. [12] crown for accuracy.

The paper's Section II cites Jin, Luk & Thomas's FCCM'11 survey: *"They
conclude that quadrature methods are the best compromise to price
American options, while tree-based methods are optimal when
time-to-solution is a key constraint."*  This module implements a
QUAD-style method (Andricopoulos et al.) so experiment E16 can
reproduce that conclusion quantitatively.

Between exercise dates the value satisfies

    V(t, x) = e^{-r dt} * Int V(t+dt, y) * phi(y - x - mu) dy,

with ``x = log S`` and a Gaussian transition kernel.  The method
discretises log-price on a uniform grid **with a node pinned on the
strike's kink** (quadrature rules lose their order on non-smooth
integrands unless the kink sits on a node), builds the dense transition
matrix once, and rolls backward applying the early-exercise floor at
each date.  Error is O(dx^2) from the trapezoid rule — in practice far
below the lattice's O(1/N) at comparable work, which is exactly the
trade-off [12] reports.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import FinanceError
from .options import Option

__all__ = ["price_quadrature"]


def price_quadrature(
    option: Option,
    exercise_dates: int = 64,
    grid_points: int = 513,
    grid_width_stds: float = 7.5,
) -> float:
    """Price an option by backward grid quadrature (QUAD method).

    :param exercise_dates: Bermudan dates approximating American
        exercise (European contracts apply no intermediate floor).
    :param grid_points: log-price grid resolution (kink-aligned).
    :param grid_width_stds: half-width of the grid in terminal
        standard deviations.
    """
    if exercise_dates < 1:
        raise FinanceError("need at least one exercise date")
    if grid_points < 16:
        raise FinanceError("grid too coarse; use >= 16 points")
    if grid_width_stds <= 2.0:
        raise FinanceError("grid must span more than 2 standard deviations")

    dt = option.maturity / exercise_dates
    drift = (option.rate - option.dividend_yield
             - 0.5 * option.volatility**2) * dt
    vol_dt = option.volatility * math.sqrt(dt)
    discount = math.exp(-option.rate * dt)
    sign = option.option_type.sign

    # uniform log-price grid with a node exactly on the payoff kink:
    # choose dx, then place the grid so log(K) lands on a node and the
    # span still covers log(S0) +/- width.
    total_std = option.volatility * math.sqrt(option.maturity)
    half_width = grid_width_stds * total_std + abs(drift) * exercise_dates
    log_strike = math.log(option.strike)
    log_spot = math.log(option.spot)
    lo = min(log_spot, log_strike) - half_width
    hi = max(log_spot, log_strike) + half_width
    dx = (hi - lo) / (grid_points - 1)
    # shift so that log_strike is an exact node
    offset = (log_strike - lo) % dx
    lo += offset - dx
    grid = lo + dx * np.arange(grid_points + 1)

    if dx > vol_dt:
        raise FinanceError(
            f"grid spacing {dx:.4f} does not resolve the one-step kernel "
            f"width {vol_dt:.4f}; increase grid_points or reduce "
            "exercise_dates"
        )

    # dense one-step transition matrix, trapezoid weights, rows
    # renormalised to unit mass (kills the truncation leak)
    diff = grid[None, :] - grid[:, None] - drift
    kernel = np.exp(-0.5 * (diff / vol_dt) ** 2) / (vol_dt * math.sqrt(2 * math.pi))
    weights = np.full(len(grid), dx)
    weights[0] = weights[-1] = dx / 2
    transition = kernel * weights[None, :]
    transition /= transition.sum(axis=1, keepdims=True)

    intrinsic = np.maximum(sign * (np.exp(grid) - option.strike), 0.0)
    values = intrinsic.copy()
    for step in range(exercise_dates - 1, -1, -1):
        values = discount * (transition @ values)
        if option.is_american and step > 0:
            values = np.maximum(values, intrinsic)

    return float(np.interp(log_spot, grid, values))
