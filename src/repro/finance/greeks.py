"""Lattice greeks for American options.

The classical trick (Hull, *Options, Futures & Other Derivatives*): the
nodes of the first two tree levels already contain prices at perturbed
spots, so delta, gamma and theta fall out of a single pricing run with
no re-pricing.  Vega and rho use central finite differences over
re-parameterised trees.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import FinanceError
from .lattice import LatticeFamily, build_lattice_params
from .options import Option

__all__ = ["LatticeGreeks", "lattice_greeks"]


@dataclass(frozen=True)
class LatticeGreeks:
    """American-option sensitivities estimated on the binomial tree."""

    price: float
    delta: float
    gamma: float
    theta: float
    vega: float
    rho: float


def _tree_values(option: Option, steps: int, family: LatticeFamily):
    """Backward induction keeping levels 0..2; returns (V0, V1, V2, params)."""
    params = build_lattice_params(option, steps, family)
    sign = option.option_type.sign
    rp = params.discounted_p_up
    rq = params.discounted_p_down

    k = np.arange(steps + 1, dtype=float)
    prices = option.spot * params.up ** (steps - k) * params.down**k
    values = np.maximum(sign * (prices - option.strike), 0.0)

    level1 = level2 = None
    for t in range(steps - 1, -1, -1):
        values = rp * values[: t + 1] + rq * values[1 : t + 2]
        prices = prices[: t + 1] * params.down
        if option.is_american:
            values = np.maximum(values, sign * (prices - option.strike))
        if t == 2:
            level2 = values.copy()
        elif t == 1:
            level1 = values.copy()

    return float(values[0]), level1, level2, params


def lattice_greeks(
    option: Option,
    steps: int = 512,
    family: LatticeFamily = LatticeFamily.CRR,
    bump_vol: float = 1e-3,
    bump_rate: float = 1e-4,
) -> LatticeGreeks:
    """Estimate price and greeks of ``option`` on one lattice family.

    :param steps: must be >= 3 so levels 0..2 exist.
    :param bump_vol: absolute volatility bump for the vega difference.
    :param bump_rate: absolute rate bump for the rho difference.
    """
    if steps < 3:
        raise FinanceError("lattice greeks need at least 3 steps")

    price, level1, level2, params = _tree_values(option, steps, family)
    s0 = option.spot
    u, d = params.up, params.down

    s_up, s_dn = s0 * u, s0 * d
    delta = (level1[0] - level1[1]) / (s_up - s_dn)

    s_uu, s_mid, s_dd = s0 * u * u, s0, s0 * d * d
    delta_up = (level2[0] - level2[1]) / (s_uu - s_mid)
    delta_dn = (level2[1] - level2[2]) / (s_mid - s_dd)
    gamma = (delta_up - delta_dn) / (0.5 * (s_uu - s_dd))

    # theta from the recombined middle node two steps ahead (per year).
    theta = (level2[1] - price) / (2.0 * params.dt)

    vega_hi = _tree_values(option.with_volatility(option.volatility + bump_vol), steps, family)[0]
    vega_lo = _tree_values(option.with_volatility(max(option.volatility - bump_vol, 1e-8)), steps, family)[0]
    vega = (vega_hi - vega_lo) / (2.0 * bump_vol)

    rho_hi = _tree_values(replace(option, rate=option.rate + bump_rate), steps, family)[0]
    rho_lo = _tree_values(replace(option, rate=option.rate - bump_rate), steps, family)[0]
    rho = (rho_hi - rho_lo) / (2.0 * bump_rate)

    return LatticeGreeks(
        price=price, delta=delta, gamma=gamma, theta=theta, vega=vega, rho=rho
    )
