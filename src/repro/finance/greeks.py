"""Lattice greeks for American options.

The classical trick (Hull, *Options, Futures & Other Derivatives*): the
nodes of the first two tree levels already contain prices at perturbed
spots, so delta, gamma and theta fall out of a single pricing run with
no re-pricing.  Vega and rho use central finite differences over
re-parameterised trees.

:func:`greeks_from_levels` is the one shared formula mapping (root,
level 1, level 2) to delta/gamma/theta; it accepts scalars or batch
arrays, so the scalar :func:`lattice_greeks` here and the batched
engine greeks path (:meth:`repro.engine.PricingEngine.run_greeks`)
compute the sensitivities from captured levels through *identical*
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import FinanceError
from .lattice import LatticeFamily, LatticeParams, build_lattice_arrays
from .options import Option

__all__ = ["LatticeGreeks", "lattice_greeks", "greeks_from_levels",
           "tree_value_levels"]


@dataclass(frozen=True)
class LatticeGreeks:
    """American-option sensitivities estimated on the binomial tree."""

    price: float
    delta: float
    gamma: float
    theta: float
    vega: float
    rho: float


def tree_value_levels(option: Option, steps: int, family: LatticeFamily):
    """Backward induction keeping levels 0..2; returns (V0, V1, V2, params).

    The reference-software twin of the batch simulators'
    ``capture_levels`` mode: one pricing pass whose value rows at tree
    levels 1 and 2 are copied out for the lattice greeks formulas.

    Tree constants come from the vectorised
    :func:`~repro.finance.lattice.build_lattice_arrays` builder (the
    one every batch path uses) rather than the ``math.exp`` scalar
    builder: the two can differ in the last ulp, and the vega/rho
    central differences amplify that by ``1 / (2 * bump)`` — routing
    the scalar reference through the same builder keeps
    :func:`lattice_greeks` and the engine's batched greeks bitwise
    comparable.
    """
    arrays = build_lattice_arrays([option], steps, family)
    params = LatticeParams(
        steps=steps, dt=float(arrays.dt[0]), up=float(arrays.up[0]),
        down=float(arrays.down[0]), p_up=float(arrays.p_up[0]),
        discount=float(arrays.discount[0]), family=family,
    )
    sign = option.option_type.sign
    rp = params.discounted_p_up
    rq = params.discounted_p_down

    k = np.arange(steps + 1, dtype=float)
    prices = option.spot * params.up ** (steps - k) * params.down**k
    values = np.maximum(sign * (prices - option.strike), 0.0)

    pulldown = params.pulldown
    level1 = level2 = None
    for t in range(steps - 1, -1, -1):
        values = rp * values[: t + 1] + rq * values[1 : t + 2]
        prices = prices[: t + 1] * pulldown
        if option.is_american:
            values = np.maximum(values, sign * (prices - option.strike))
        if t == 2:
            level2 = values.copy()
        elif t == 1:
            level1 = values.copy()

    return float(values[0]), level1, level2, params


# Backwards-compatible private alias (pre-batched-greeks name).
_tree_values = tree_value_levels


def greeks_from_levels(spot, up, down, dt, price, level1, level2):
    """Delta, gamma and theta from tree levels 0..2 of one pricing pass.

    Works elementwise on scalars or parallel batch arrays: ``spot``,
    ``up``, ``down``, ``dt`` and ``price`` are per-option values,
    ``level1``/``level2`` hold the level-1/level-2 option values with
    the node axis *last* (shapes ``(..., 2)`` and ``(..., 3)``).

    The node spots are recomputed family-correctly: the level-2 middle
    node sits at ``spot * u * d``, which is ``spot`` only under the
    CRR recombination ``u*d = 1`` (for Jarrow-Rudd/Tian the drift
    moves it).

    :returns: ``(delta, gamma, theta)`` with theta per year.
    """
    level1 = np.asarray(level1, dtype=np.float64)
    level2 = np.asarray(level2, dtype=np.float64)

    s_up = spot * up
    s_dn = spot * down
    delta = (level1[..., 0] - level1[..., 1]) / (s_up - s_dn)

    s_uu = spot * up * up
    s_mid = spot * up * down
    s_dd = spot * down * down
    delta_up = (level2[..., 0] - level2[..., 1]) / (s_uu - s_mid)
    delta_dn = (level2[..., 1] - level2[..., 2]) / (s_mid - s_dd)
    gamma = (delta_up - delta_dn) / (0.5 * (s_uu - s_dd))

    # theta from the recombined middle node two steps ahead (per year).
    theta = (level2[..., 1] - price) / (2.0 * dt)
    return delta, gamma, theta


def lattice_greeks(
    option: Option,
    steps: int = 512,
    family: LatticeFamily = LatticeFamily.CRR,
    bump_vol: float = 1e-3,
    bump_rate: float = 1e-4,
) -> LatticeGreeks:
    """Estimate price and greeks of ``option`` on one lattice family.

    :param steps: must be >= 3 so levels 0..2 exist.
    :param bump_vol: absolute volatility bump for the vega difference.
    :param bump_rate: absolute rate bump for the rho difference.
    """
    if steps < 3:
        raise FinanceError("lattice greeks need at least 3 steps")

    price, level1, level2, params = tree_value_levels(option, steps, family)
    delta, gamma, theta = greeks_from_levels(
        option.spot, params.up, params.down, params.dt, price,
        level1, level2)

    vega_hi = tree_value_levels(option.with_volatility(option.volatility + bump_vol), steps, family)[0]
    vega_lo = tree_value_levels(option.with_volatility(max(option.volatility - bump_vol, 1e-8)), steps, family)[0]
    vega = (vega_hi - vega_lo) / (2.0 * bump_vol)

    rho_hi = tree_value_levels(replace(option, rate=option.rate + bump_rate), steps, family)[0]
    rho_lo = tree_value_levels(replace(option, rate=option.rate - bump_rate), steps, family)[0]
    rho = (rho_hi - rho_lo) / (2.0 * bump_rate)

    return LatticeGreeks(
        price=price, delta=float(delta), gamma=float(gamma),
        theta=float(theta), vega=vega, rho=rho
    )
