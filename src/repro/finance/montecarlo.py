"""Monte Carlo pricers — the rival method of the paper's Section II.

The related work spends two paragraphs on Monte Carlo accelerators
([4]-[8]): massively parallel, "best suited to complex model evaluation
or to problems with high dimensionality", but with acceleration factors
"counterbalanced by the slow convergence rate of this method".  This
module implements the method so experiment E16 can measure that
trade-off against the binomial lattice on equal footing:

* :func:`price_european_mc` — geometric-Brownian-motion terminal
  sampling with optional antithetic variates;
* :func:`price_american_lsmc` — Longstaff-Schwartz least-squares Monte
  Carlo for the American early-exercise problem.

Both report a standard error so the 1/sqrt(paths) convergence is
directly observable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import FinanceError
from .options import Option

__all__ = ["MCResult", "price_european_mc", "price_american_lsmc"]


@dataclass(frozen=True)
class MCResult:
    """A Monte Carlo estimate with its sampling uncertainty.

    :param price: the point estimate.
    :param std_error: standard error of the estimate (``~sigma/sqrt(n)``).
    :param paths: simulated paths (after antithetic doubling).
    """

    price: float
    std_error: float
    paths: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval (default 95%)."""
        return (self.price - z * self.std_error,
                self.price + z * self.std_error)


def _validate(paths: int) -> None:
    if paths < 2:
        raise FinanceError(f"need at least 2 paths, got {paths}")


def price_european_mc(
    option: Option,
    paths: int = 100_000,
    seed: int = 0,
    antithetic: bool = True,
) -> MCResult:
    """European value by terminal-price sampling under GBM.

    With ``antithetic=True`` each normal draw is used with both signs,
    halving the variance of near-linear payoffs at no extra draws.
    """
    _validate(paths)
    if option.is_american:
        raise FinanceError(
            "terminal sampling cannot price American exercise; "
            "use price_american_lsmc"
        )
    rng = np.random.default_rng(seed)
    n = paths // 2 if antithetic else paths
    z = rng.standard_normal(n)

    drift = (option.rate - option.dividend_yield
             - 0.5 * option.volatility**2) * option.maturity
    diffusion = option.volatility * math.sqrt(option.maturity)
    sign = option.option_type.sign
    disc = math.exp(-option.rate * option.maturity)

    def discounted_payoff(normals):
        terminal = option.spot * np.exp(drift + diffusion * normals)
        return disc * np.maximum(sign * (terminal - option.strike), 0.0)

    if antithetic:
        # a (z, -z) pair is one sample: its mean exploits the negative
        # correlation, and the pair means are i.i.d. — using the raw 2n
        # values would overstate the standard error
        samples = 0.5 * (discounted_payoff(z) + discounted_payoff(-z))
        total_paths = 2 * n
    else:
        samples = discounted_payoff(z)
        total_paths = n

    price = float(samples.mean())
    std_error = float(samples.std(ddof=1) / math.sqrt(len(samples)))
    return MCResult(price=price, std_error=std_error, paths=total_paths)


def price_american_lsmc(
    option: Option,
    paths: int = 50_000,
    steps: int = 50,
    seed: int = 0,
    basis_degree: int = 2,
    antithetic: bool = True,
) -> MCResult:
    """American value by Longstaff-Schwartz least-squares Monte Carlo.

    Simulates full GBM paths, then walks backward regressing the
    continuation value on a polynomial basis of the spot over the
    in-the-money paths (the classic 2001 algorithm).

    :param steps: exercise dates (the method prices a Bermudan
        approximation of the American contract).
    :param basis_degree: degree of the polynomial regression basis.
    """
    _validate(paths)
    if steps < 2:
        raise FinanceError("LSMC needs at least 2 exercise dates")
    if basis_degree < 1:
        raise FinanceError("basis_degree must be >= 1")

    rng = np.random.default_rng(seed)
    n = paths // 2 if antithetic else paths
    dt = option.maturity / steps
    drift = (option.rate - option.dividend_yield
             - 0.5 * option.volatility**2) * dt
    diffusion = option.volatility * math.sqrt(dt)

    z = rng.standard_normal((n, steps))
    if antithetic:
        z = np.concatenate([z, -z], axis=0)
    log_paths = np.cumsum(drift + diffusion * z, axis=1)
    spots = option.spot * np.exp(log_paths)  # (paths, steps), t=dt..T

    sign = option.option_type.sign
    discount = math.exp(-option.rate * dt)

    # cashflow holds each path's (already discounted-to-current-step)
    # realised value; walk backward deciding exercise vs continuation
    cashflow = np.maximum(sign * (spots[:, -1] - option.strike), 0.0)
    for t in range(steps - 2, -1, -1):
        cashflow = cashflow * discount
        spot_t = spots[:, t]
        intrinsic = sign * (spot_t - option.strike)
        itm = intrinsic > 0.0
        if itm.sum() > basis_degree + 1:
            x = spot_t[itm] / option.strike  # normalised regressor
            coeffs = np.polyfit(x, cashflow[itm], basis_degree)
            continuation = np.polyval(coeffs, x)
            exercise = intrinsic[itm] > continuation
            exercised_values = np.where(exercise, intrinsic[itm],
                                        cashflow[itm])
            cashflow[itm] = exercised_values
    cashflow = cashflow * discount  # back to t=0

    # the holder may also exercise immediately
    price = max(float(cashflow.mean()), option.intrinsic())
    std_error = float(cashflow.std(ddof=1) / math.sqrt(len(cashflow)))
    return MCResult(price=price, std_error=std_error, paths=len(cashflow))
