"""NVIDIA GTX660 Ti device model (the paper's development target).

Specs from the paper's Section V.A and its reference [14]: 5 compute
units (SMX), 960 CUDA cores at 980 MHz with one double-precision ALU
per 8 cores (120 DP-ALUs), 2 GB GDDR5 at 144 GB/s, PCIe 3.0 x16,
140 W TDP.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceModelError
from ..opencl.device import Device
from ..opencl.types import DeviceType
from . import calibration as cal
from .base import ComputeModel, Precision
from .ddr import GTX660_GDDR5, MemorySystem
from .link import PCIeLink

__all__ = ["GpuSpec", "GTX660_TI", "gpu_compute_model", "gpu_device"]


@dataclass(frozen=True)
class GpuSpec:
    """Static datasheet numbers of a GPU board."""

    name: str
    compute_units: int
    cuda_cores: int
    dp_alus: int
    clock_hz: float
    tdp_w: float
    memory: MemorySystem
    link: PCIeLink

    def peak_flops(self, precision: str) -> float:
        """Peak FP issue rate (1 op/ALU/cycle; no FMA double-counting)."""
        Precision.check(precision)
        alus = self.cuda_cores if precision == Precision.SINGLE else self.dp_alus
        return alus * self.clock_hz


#: The paper's GPU, PCIe efficiency calibrated per
#: :mod:`repro.devices.calibration`.
GTX660_TI = GpuSpec(
    name="NVIDIA GeForce GTX660 Ti",
    compute_units=5,
    cuda_cores=960,
    dp_alus=120,
    clock_hz=980e6,
    tdp_w=140.0,
    memory=GTX660_GDDR5,
    link=PCIeLink(generation=3, lanes=16,
                  efficiency=cal.GTX_LINK_EFFICIENCY, latency_ns=20_000.0),
)


def gpu_compute_model(
    kernel_arch: str,
    precision: str = Precision.DOUBLE,
    spec: GpuSpec = GTX660_TI,
) -> ComputeModel:
    """Calibrated :class:`ComputeModel` for one GPU configuration.

    :param kernel_arch: ``"iv_a"`` (dataflow) or ``"iv_b"`` (work-group).
    :param precision: ``"single"`` or ``"double"``.
    """
    Precision.check(precision)
    if precision == Precision.SINGLE:
        issue_eff = cal.GPU_SP_ISSUE_EFFICIENCY
    else:
        issue_eff = cal.GPU_DP_ISSUE_EFFICIENCY
    node_rate = spec.peak_flops(precision) * issue_eff / cal.NODE_FLOPS

    if kernel_arch == "iv_b":
        overhead = 50_000.0  # one enqueue for the whole workload
        saturation = 1e6  # the paper: IV.B on the GTX660 saturates at 1e6
    elif kernel_arch == "iv_a":
        node_rate *= cal.GPU_KERNEL_A_GLOBAL_ACCESS_DERATE
        overhead = cal.GPU_BATCH_OVERHEAD_NS
        saturation = 1e5
    else:
        raise DeviceModelError(f"unknown kernel architecture {kernel_arch!r}")

    return ComputeModel(
        name=f"{spec.name} / kernel {kernel_arch} / {precision}",
        node_rate_per_s=node_rate,
        power_w=spec.tdp_w,
        link=spec.link,
        launch_overhead_ns=overhead,
        precision=precision,
        saturation_options=saturation,
    )


def gpu_device(
    kernel_arch: str = "iv_b",
    precision: str = Precision.DOUBLE,
    spec: GpuSpec = GTX660_TI,
) -> Device:
    """Simulated OpenCL :class:`Device` for the GPU configuration.

    Local memory is the 48 KB per-SMX L1 the paper quotes.
    """
    model = gpu_compute_model(kernel_arch, precision, spec)
    return Device(
        name=spec.name,
        device_type=DeviceType.GPU,
        compute_units=spec.compute_units,
        global_mem_bytes=spec.memory.capacity_bytes,
        local_mem_bytes=48 * 1024,
        max_work_group_size=1024,
        timing_model=model,
        double_precision=True,
    )
