"""Terasic DE4 / Stratix IV FPGA device model (the paper's target).

Board facts from Section V.A: Stratix IV 4SGX530 FPGA, two DDR2 banks
(12.75 GB/s aggregate), PCIe gen2 x4 to the host (2 GB/s theoretical),
local memory built from M9K block RAMs behind a 600 MHz interconnect.

Unlike the fixed-silicon GPU/CPU models, the FPGA's clock rate,
parallelism and power are *outputs of the compile*: the paper's two
kernels close timing at 98.27 MHz (IV.A, vectorised x2, replicated x3)
and 162.62 MHz (IV.B, unrolled x2, vectorised x4) with 15 W and 17 W
estimated power.  :func:`fpga_compute_model` therefore takes an
*operating point* — either the paper's defaults, or any
``CompiledKernel`` produced by :mod:`repro.hls` (duck-typed: needs
``fmax_hz``, ``parallel_lanes`` and ``power_w``).

The sustained node rate of a deeply pipelined kernel is one node
update per clock per parallel lane:

    node_rate = fmax * lanes * derate

with the small derate calibrated in :mod:`repro.devices.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceModelError
from ..opencl.device import Device
from ..opencl.types import DeviceType
from . import calibration as cal
from .base import ComputeModel, Precision
from .ddr import DE4_DDR2, MemorySystem
from .link import PCIeLink

__all__ = [
    "FpgaBoardSpec",
    "DE4_BOARD",
    "FpgaOperatingPoint",
    "KERNEL_A_PAPER_POINT",
    "KERNEL_B_PAPER_POINT",
    "fpga_compute_model",
    "fpga_device",
]


@dataclass(frozen=True)
class FpgaBoardSpec:
    """Static board-level facts of an FPGA accelerator card."""

    name: str
    part: str
    memory: MemorySystem
    link: PCIeLink
    #: local-memory capacity exposed per work-group (M9K-backed)
    local_mem_bytes: int
    max_work_group_size: int


DE4_BOARD = FpgaBoardSpec(
    name="Terasic DE4 (Stratix IV 4SGX530)",
    part="EP4SGX530",
    memory=DE4_DDR2,
    link=PCIeLink(generation=2, lanes=4,
                  efficiency=cal.DE4_LINK_EFFICIENCY, latency_ns=50_000.0),
    local_mem_bytes=128 * 1024,
    max_work_group_size=4096,
)


@dataclass(frozen=True)
class FpgaOperatingPoint:
    """One compiled kernel's fitted clock / parallelism / power.

    Matches the attribute surface of ``repro.hls.CompiledKernel``, so a
    compile report can be passed anywhere an operating point is
    expected.
    """

    fmax_hz: float
    parallel_lanes: int
    power_w: float

    def __post_init__(self) -> None:
        if self.fmax_hz <= 0:
            raise DeviceModelError("fmax must be positive")
        if self.parallel_lanes < 1:
            raise DeviceModelError("parallel_lanes must be >= 1")
        if self.power_w <= 0:
            raise DeviceModelError("power must be positive")


#: Paper Table I operating points (used when no HLS compile is run).
KERNEL_A_PAPER_POINT = FpgaOperatingPoint(
    fmax_hz=98.27e6, parallel_lanes=6, power_w=15.0
)
KERNEL_B_PAPER_POINT = FpgaOperatingPoint(
    fmax_hz=162.62e6, parallel_lanes=8, power_w=17.0
)


def fpga_compute_model(
    kernel_arch: str,
    operating_point=None,
    precision: str = Precision.DOUBLE,
    board: FpgaBoardSpec = DE4_BOARD,
) -> ComputeModel:
    """Calibrated :class:`ComputeModel` for one FPGA configuration.

    :param kernel_arch: ``"iv_a"`` or ``"iv_b"``.
    :param operating_point: an :class:`FpgaOperatingPoint` or any
        object with ``fmax_hz``/``parallel_lanes``/``power_w`` (e.g. a
        ``repro.hls.CompiledKernel``); defaults to the paper's Table I
        point for the chosen kernel.
    :param precision: bookkeeping only — the FPGA pipeline retires one
        node per lane per clock in either precision; precision instead
        changes *resources* (and hence the operating point itself).
    """
    if kernel_arch == "iv_a":
        point = operating_point or KERNEL_A_PAPER_POINT
        derate = 1.0  # the dataflow pipeline is host-limited, not compute-limited
        overhead = cal.FPGA_BATCH_OVERHEAD_NS
    elif kernel_arch == "iv_b":
        point = operating_point or KERNEL_B_PAPER_POINT
        derate = cal.FPGA_PIPELINE_DERATE
        overhead = 100_000.0  # single enqueue for the whole workload
    else:
        raise DeviceModelError(f"unknown kernel architecture {kernel_arch!r}")

    Precision.check(precision)
    node_rate = point.fmax_hz * point.parallel_lanes * derate
    return ComputeModel(
        name=f"{board.name} / kernel {kernel_arch} / {precision}",
        node_rate_per_s=node_rate,
        power_w=point.power_w,
        link=board.link,
        launch_overhead_ns=overhead,
        precision=precision,
        # Section V.C: saturation "typically happens at 1e5 priced options".
        saturation_options=1e5,
    )


def fpga_device(
    kernel_arch: str = "iv_b",
    operating_point=None,
    precision: str = Precision.DOUBLE,
    board: FpgaBoardSpec = DE4_BOARD,
) -> Device:
    """Simulated OpenCL :class:`Device` for the FPGA configuration."""
    model = fpga_compute_model(kernel_arch, operating_point, precision, board)
    return Device(
        name=board.name,
        device_type=DeviceType.ACCELERATOR,
        compute_units=1,
        global_mem_bytes=board.memory.capacity_bytes,
        local_mem_bytes=board.local_mem_bytes,
        max_work_group_size=board.max_work_group_size,
        timing_model=model,
        double_precision=True,
    )
