"""Named platform catalog: the paper's three execution targets.

Importing this module registers the three simulated platforms with
:func:`repro.opencl.get_platforms`, mirroring what installing the
Altera/NVIDIA/Intel ICDs does on a real host:

* ``"Altera SDK for OpenCL (simulated)"`` — the Terasic DE4 board;
* ``"NVIDIA CUDA (simulated)"`` — the GTX660 Ti;
* ``"Intel OpenCL (simulated)"`` — the Xeon X5450 host CPU.

Catalog devices default to the kernel IV.B double-precision operating
point; host programs that need a differently-calibrated device (e.g.
kernel IV.A's link-dominated configuration) build one directly with
``fpga_device`` / ``gpu_device``.
"""

from __future__ import annotations

from ..opencl.platform import Platform, register_platform
from .cpu import cpu_device
from .fpga import fpga_device
from .gpu import gpu_device

__all__ = ["ALTERA_PLATFORM", "NVIDIA_PLATFORM", "INTEL_PLATFORM",
           "register_all"]

ALTERA_PLATFORM = Platform(
    name="Altera SDK for OpenCL (simulated)",
    vendor="Altera",
    devices=(fpga_device("iv_b"),),
)

NVIDIA_PLATFORM = Platform(
    name="NVIDIA CUDA (simulated)",
    vendor="NVIDIA",
    devices=(gpu_device("iv_b"),),
)

INTEL_PLATFORM = Platform(
    name="Intel OpenCL (simulated)",
    vendor="Intel",
    devices=(cpu_device(),),
)


def register_all() -> tuple:
    """(Re-)register the three vendor platforms; idempotent.

    Called on import and again by :func:`repro.opencl.get_platforms`
    whenever the registry is found empty (e.g. after a test cleared it).
    """
    for platform in (ALTERA_PLATFORM, NVIDIA_PLATFORM, INTEL_PLATFORM):
        register_platform(platform)
    return ALTERA_PLATFORM, NVIDIA_PLATFORM, INTEL_PLATFORM


register_all()
