"""Every calibration constant of the reproduction, in one place.

The device models are first-principles formulas (ALUs x clock /
ops-per-node; lanes x per-lane-rate x efficiency), but first-principles
formulas have free efficiency factors that the original authors
measured on real silicon and we cannot.  Each factor below is pinned
against exactly one operating point of the paper and is *not* re-tuned
per experiment — all other numbers (crossovers, ablation deltas,
saturation shapes) are then predictions of the model, which is what
makes the reproduction meaningful.

Operating points used (paper Table II and Section V.C, N=1024, so one
option = N(N+1)/2 = 524 800 interior node updates):

====================================  ==================  =============
configuration                          paper value         constant(s)
====================================  ==================  =============
IV.B FPGA double                       2 400 options/s     FPGA_PIPELINE_DERATE
IV.A FPGA double                       25 options/s        DE4_LINK_EFFICIENCY
IV.B GPU double                        8 900 options/s     GPU_DP_ISSUE_EFFICIENCY
IV.B GPU single                        47 000 options/s    GPU_SP_ISSUE_EFFICIENCY
IV.A GPU double (full readback)        58.4 options/s      GTX_LINK_EFFICIENCY
IV.A GPU double (result-only)          840 options/s       GPU_BATCH_OVERHEAD_NS
reference sw double                    222 options/s       CPU_CYCLES_PER_NODE_DOUBLE
reference sw single                    116 options/s       CPU_CYCLES_PER_NODE_SINGLE
====================================  ==================  =============
"""

from __future__ import annotations

__all__ = [
    "NODE_FLOPS",
    "FPGA_PIPELINE_DERATE",
    "DE4_LINK_EFFICIENCY",
    "GTX_LINK_EFFICIENCY",
    "GPU_DP_ISSUE_EFFICIENCY",
    "GPU_SP_ISSUE_EFFICIENCY",
    "GPU_BATCH_OVERHEAD_NS",
    "FPGA_BATCH_OVERHEAD_NS",
    "GPU_KERNEL_A_GLOBAL_ACCESS_DERATE",
    "CPU_CYCLES_PER_NODE_DOUBLE",
    "CPU_CYCLES_PER_NODE_SINGLE",
    "SATURATION_KNEE_RATIO",
]

#: Floating-point operations in one backward-induction node update of
#: Equation (1): two multiplies + one add for the continuation value,
#: one multiply for ``S *= d``, one subtract for the intrinsic value
#: and one max.
NODE_FLOPS = 6

# --- FPGA (Terasic DE4, Stratix IV 4SGX530) --------------------------------

#: Kernel IV.B retires SIMD x unroll node updates per clock once the
#: pipeline is full; measured throughput is slightly below f*V*U
#: because of work-group ramp-down (one work-item retires per step) and
#: barrier turnaround.  2400 / (162.62 MHz * 8 / 524800) = 0.968.
FPGA_PIPELINE_DERATE = 0.968

#: Effective fraction of the DE4's theoretical 2 GB/s PCIe gen2 x4
#: bandwidth achieved by kernel IV.A's per-batch ping-pong readback
#: (pageable host memory, blocking reads through the Altera BSP DMA).
#: Pinned so one batch (12.62 MB readback + 0.89 ms compute) takes
#: 1/25 s.  Gives ~0.33 GB/s effective.
DE4_LINK_EFFICIENCY = 0.1633

#: Per-batch fixed host cost on the FPGA path (enqueue + BSP sync).
FPGA_BATCH_OVERHEAD_NS = 2.0e5

# --- GPU (NVIDIA GTX660 Ti) -------------------------------------------------

#: Fraction of the 120 DP-ALU x 980 MHz issue rate that kernel IV.B
#: sustains per node-update flop in double precision (barriers, local
#: memory traffic, non-FP instructions).  8900 options/s => 4.67 G
#: nodes/s => 6 flops * 4.67e9 / 117.6e9 = 0.238.
GPU_DP_ISSUE_EFFICIENCY = 0.238

#: Same for single precision on the 960 CUDA cores.  47000 options/s
#: => 24.66 G nodes/s => 6 * 24.66e9 / 940.8e9 = 0.157.
GPU_SP_ISSUE_EFFICIENCY = 0.157

#: Fixed host cost per kernel-IV.A batch on the GPU (enqueue, blocking
#: clFinish round trip, input staging).  Pinned by the paper's
#: modified kernel IV.A (result-only readback): 840 batches/s with
#: ~0.23 ms of compute per batch leaves ~0.87 ms of overhead.
GPU_BATCH_OVERHEAD_NS = 8.745e5

#: Effective fraction of PCIe 3.0 x16 (15.76 GB/s theoretical) that
#: the full-buffer readback achieves (pageable memory, no overlap,
#: blocking per-batch synchronisation).  Pinned by the unmodified
#: kernel IV.A at 58.4 options/s: the 12.62 MB readback must take
#: ~15.9 ms => ~0.79 GB/s => 0.050.
GTX_LINK_EFFICIENCY = 0.0503

#: Kernel IV.A work-items touch only global memory (no local reuse),
#: halving the GPU's sustainable node rate versus kernel IV.B.  Only
#: affects the (transfer-dominated) kernel IV.A batch compute term.
GPU_KERNEL_A_GLOBAL_ACCESS_DERATE = 0.5

# --- CPU (Intel Xeon X5450, one core @ 3.0 GHz) -----------------------------

#: Cycles per node update of the C reference, double precision:
#: 3.0e9 / (222 * 524800) = 25.75.
CPU_CYCLES_PER_NODE_DOUBLE = 25.75

#: Single precision is *slower* in the paper's Table II (116 options/s
#: vs 222); the printed value implies 49.3 cycles/node.  The paper does
#: not explain the inversion (likely float<->double conversion in the
#: x87/SSE reference path); we carry the printed calibration.
CPU_CYCLES_PER_NODE_SINGLE = 49.26

# --- saturation shape --------------------------------------------------------

#: The paper states throughput becomes linear in the workload after
#: "device saturation" (~1e5 options on the FPGA, ~1e6 for kernel IV.B
#: on the GPU).  We model effective rate = peak * n / (n + n_sat / K)
#: with K chosen so that n = n_sat delivers 95% of peak: K = 19.
SATURATION_KNEE_RATIO = 19.0
