"""Common device-model machinery.

A :class:`ComputeModel` is a calibrated performance+energy model of one
execution target *in one configuration* (a Table II column is exactly
one such configuration: kernel architecture x platform x precision).
It implements the simulator's :class:`~repro.opencl.device.TimingModel`
protocol, so attaching it to a simulated :class:`Device` makes the
command-queue clock advance with physically meaningful times, and it
answers the two questions every experiment asks:

* how fast? — :meth:`node_rate` (tree-node updates per second) and
  :meth:`ndrange_ns`;
* how hungry? — :attr:`power_w`, from which options/J follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeviceModelError
from ..opencl.device import LaunchInfo
from ..opencl.types import TransferDirection
from .link import PCIeLink

__all__ = ["Precision", "ComputeModel"]


class Precision:
    """String constants for numeric precision (Table II's second row)."""

    SINGLE = "single"
    DOUBLE = "double"

    _VALID = (SINGLE, DOUBLE)

    @classmethod
    def check(cls, value: str) -> str:
        if value not in cls._VALID:
            raise DeviceModelError(
                f"precision must be one of {cls._VALID}, got {value!r}"
            )
        return value


@dataclass
class ComputeModel:
    """Calibrated timing+power model of one device configuration.

    :param name: human-readable configuration name.
    :param node_rate_per_s: sustained tree-node updates per second the
        configuration retires once saturated (the paper's "Tree
        nodes/s" row divided by any derating already folded in).
    :param power_w: average power drawn while computing.  For the FPGA
        this is the quartus_pow-style estimate (board-chip only, as the
        paper notes); for CPU/GPU the TDP, matching how the paper
        computes options/J.
    :param link: PCIe model used for host<->device transfer times.
    :param launch_overhead_ns: fixed cost of one kernel enqueue
        (driver/runtime); dominates kernel IV.A's modified-GPU variant.
    :param precision: "single" or "double" (bookkeeping only; the rate
        is already precision-specific).
    :param saturation_options: number of in-flight options at which the
        configuration reaches ~95% of its peak rate (the paper reports
        ~1e5 for the FPGA and ~1e6 for kernel IV.B on the GPU).
    """

    name: str
    node_rate_per_s: float
    power_w: float
    link: PCIeLink
    launch_overhead_ns: float = 5_000.0
    precision: str = Precision.DOUBLE
    saturation_options: float = 1e5

    def __post_init__(self) -> None:
        if self.node_rate_per_s <= 0:
            raise DeviceModelError("node_rate_per_s must be positive")
        if self.power_w <= 0:
            raise DeviceModelError("power_w must be positive")
        if self.launch_overhead_ns < 0:
            raise DeviceModelError("launch_overhead_ns cannot be negative")
        if self.saturation_options <= 0:
            raise DeviceModelError("saturation_options must be positive")
        Precision.check(self.precision)

    # -- TimingModel protocol -------------------------------------------------

    def transfer_ns(self, nbytes: int, direction: TransferDirection) -> float:
        """Host<->device transfer duration via the PCIe model."""
        return self.link.transfer_ns(nbytes, direction)

    def ndrange_ns(self, launch: LaunchInfo) -> float:
        """Kernel duration: launch overhead + work / node rate.

        ``launch.work_per_item`` carries the kernel's per-work-item
        node-update count (attached via kernel metadata), so
        ``global_size * work_per_item`` is the total node updates of
        the launch.
        """
        total_nodes = launch.global_size * launch.work_per_item
        return self.launch_overhead_ns + total_nodes / self.node_rate_per_s * 1e9

    # -- derived metrics --------------------------------------------------------

    def node_rate(self) -> float:
        """Sustained tree-node updates per second."""
        return self.node_rate_per_s

    def options_per_second(self, nodes_per_option: float) -> float:
        """Peak (post-saturation) options/s for a given tree size."""
        if nodes_per_option <= 0:
            raise DeviceModelError("nodes_per_option must be positive")
        return self.node_rate_per_s / nodes_per_option

    def options_per_joule(self, nodes_per_option: float) -> float:
        """Peak energy efficiency, the paper's options/J row."""
        return self.options_per_second(nodes_per_option) / self.power_w

    def energy_per_option_j(self, nodes_per_option: float) -> float:
        """Joules consumed per priced option (de Schryver's J/option)."""
        return 1.0 / self.options_per_joule(nodes_per_option)
