"""On-board global-memory (DDR/GDDR) model.

Carries the capacity and peak bandwidth of the board's external
memory.  The paper quotes 12.75 GB/s for the DE4's two DDR2 banks at
400 MHz and 144 GB/s for the GTX660's GDDR5; global-memory bandwidth
only binds kernel IV.A (whose in-flight working set streams through
DDR), so the model exposes a simple streaming-time query used by the
FPGA device model's compute-throughput ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceModelError

__all__ = ["MemorySystem", "DE4_DDR2", "GTX660_GDDR5"]


@dataclass(frozen=True)
class MemorySystem:
    """External memory attached to a device."""

    technology: str
    capacity_bytes: int
    peak_bandwidth_bytes_s: float
    #: fraction of peak usable for the kernel's access pattern
    efficiency: float = 0.75

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise DeviceModelError("capacity must be positive")
        if self.peak_bandwidth_bytes_s <= 0:
            raise DeviceModelError("bandwidth must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise DeviceModelError("efficiency must be in (0, 1]")

    @property
    def effective_bandwidth_bytes_s(self) -> float:
        return self.peak_bandwidth_bytes_s * self.efficiency

    def streaming_time_ns(self, nbytes: int) -> float:
        """Time to stream ``nbytes`` through the memory system."""
        if nbytes < 0:
            raise DeviceModelError("byte count cannot be negative")
        return nbytes / self.effective_bandwidth_bytes_s * 1e9


#: DE4: two DDR2-800 banks, 12.75 GB/s aggregate (paper Section V.A).
DE4_DDR2 = MemorySystem(
    technology="DDR2 (2 banks @ 400 MHz)",
    capacity_bytes=2 * 1024**3,
    peak_bandwidth_bytes_s=12.75e9,
)

#: GTX660 Ti: 2 GB GDDR5, 144 GB/s (paper Section V.A).
GTX660_GDDR5 = MemorySystem(
    technology="GDDR5",
    capacity_bytes=2 * 1024**3,
    peak_bandwidth_bytes_s=144e9,
)
