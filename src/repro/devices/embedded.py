"""Future-work OpenCL targets: TI KeyStone DSP and ARM Mali GPU.

The paper's conclusion: *"Future work will focus on other hardware
architectures supporting the OpenCL standard [16], [17], so as to
compare their performances to the FPGA device and study the
portability of the OpenCL kernel."*  Reference [16] is TI's KeyStone
multicore DSP software stack, [17] ARM's Mali OpenCL SDK.

This module models those two targets so the portability study the
authors announced can actually be run (experiment E11).  Unlike the
FPGA/GPU/CPU models, there are **no published operating points to
calibrate against** — the paper never measured these devices — so the
numbers here are *projections*: peak issue rates from the public
datasheets the paper's references point at, derated by sustained-
efficiency factors borrowed from the measured GTX660 calibration (with
a documented penalty for the DSP's software-pipelined inner loop).
Experiment E11 therefore asserts only qualitative, ordering-level
conclusions, never absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceModelError
from ..opencl.device import Device
from ..opencl.types import DeviceType
from . import calibration as cal
from .base import ComputeModel, Precision
from .ddr import MemorySystem
from .link import PCIeLink

__all__ = [
    "EmbeddedSpec",
    "TI_C6678",
    "MALI_T604",
    "embedded_compute_model",
    "embedded_device",
    "DSP_SCHEDULING_PENALTY",
]

#: The C66x VLIW core must software-pipeline the dependent
#: multiply/add/max chain of the node update and handle the row
#: shrinkage with predication; projected penalty vs a hardware-
#: scheduled GPU SMX.  A projection, not a calibration.
DSP_SCHEDULING_PENALTY = 0.5


@dataclass(frozen=True)
class EmbeddedSpec:
    """Datasheet numbers of an embedded OpenCL target."""

    name: str
    device_type: DeviceType
    compute_units: int
    clock_hz: float
    #: peak FP operations per cycle across the whole chip
    sp_flops_per_cycle: int
    dp_flops_per_cycle: int
    typical_power_w: float
    memory: MemorySystem
    link: PCIeLink
    local_mem_bytes: int
    max_work_group_size: int
    #: multiplies the borrowed GPU issue efficiency (1.0 = as-is)
    scheduling_factor: float = 1.0

    def peak_flops(self, precision: str) -> float:
        Precision.check(precision)
        per_cycle = (self.sp_flops_per_cycle if precision == Precision.SINGLE
                     else self.dp_flops_per_cycle)
        return per_cycle * self.clock_hz


#: TI TMS320C6678 (KeyStone I): eight C66x cores at 1.25 GHz, 16 SP /
#: 4 DP flops per core per cycle, ~10 W typical — the use case's power
#: budget, which is exactly why the authors flagged it.
TI_C6678 = EmbeddedSpec(
    name="TI TMS320C6678 (KeyStone)",
    device_type=DeviceType.ACCELERATOR,
    compute_units=8,
    clock_hz=1.25e9,
    sp_flops_per_cycle=8 * 16,
    dp_flops_per_cycle=8 * 4,
    typical_power_w=10.0,
    memory=MemorySystem(technology="DDR3-1333 (64-bit)",
                        capacity_bytes=512 * 1024**2,
                        peak_bandwidth_bytes_s=10.6e9),
    link=PCIeLink(generation=2, lanes=2, efficiency=0.5, latency_ns=30_000.0),
    local_mem_bytes=512 * 1024,  # per-core L2 configured as SRAM
    max_work_group_size=1024,
    scheduling_factor=DSP_SCHEDULING_PENALTY,
)

#: ARM Mali-T604 MP4 at 533 MHz: ~68 SP Gflops peak (128 flops/cycle
#: across 4 cores, FMA-counted), fp64 at quarter rate, ~2.5 W — an
#: embedded GPU living inside the host SoC (no PCIe hop at all).
MALI_T604 = EmbeddedSpec(
    name="ARM Mali-T604 MP4",
    device_type=DeviceType.GPU,
    compute_units=4,
    clock_hz=533e6,
    sp_flops_per_cycle=128,
    dp_flops_per_cycle=32,
    typical_power_w=2.5,
    memory=MemorySystem(technology="LPDDR3 (shared with host)",
                        capacity_bytes=2 * 1024**3,
                        peak_bandwidth_bytes_s=12.8e9),
    # same-die target: "link" is a cache-coherent interconnect
    link=PCIeLink(generation=3, lanes=16, efficiency=0.8, latency_ns=1_000.0),
    local_mem_bytes=32 * 1024,
    max_work_group_size=256,
)


def embedded_compute_model(
    spec: EmbeddedSpec,
    kernel_arch: str = "iv_b",
    precision: str = Precision.DOUBLE,
) -> ComputeModel:
    """Projected :class:`ComputeModel` for a future-work target.

    Issue efficiencies are borrowed from the GTX660's *measured*
    calibration (the closest data point for an OpenCL work-group
    kernel) and scaled by the spec's scheduling factor; see the module
    docstring for why E11 treats the output as qualitative.
    """
    Precision.check(precision)
    if kernel_arch not in ("iv_a", "iv_b"):
        raise DeviceModelError(f"unknown kernel architecture {kernel_arch!r}")
    if precision == Precision.SINGLE:
        issue_eff = cal.GPU_SP_ISSUE_EFFICIENCY
    else:
        issue_eff = cal.GPU_DP_ISSUE_EFFICIENCY
    issue_eff *= spec.scheduling_factor

    node_rate = spec.peak_flops(precision) * issue_eff / cal.NODE_FLOPS
    if kernel_arch == "iv_a":
        node_rate *= cal.GPU_KERNEL_A_GLOBAL_ACCESS_DERATE
        overhead = cal.GPU_BATCH_OVERHEAD_NS
    else:
        overhead = 50_000.0

    return ComputeModel(
        name=f"{spec.name} / kernel {kernel_arch} / {precision} (projected)",
        node_rate_per_s=node_rate,
        power_w=spec.typical_power_w,
        link=spec.link,
        launch_overhead_ns=overhead,
        precision=precision,
        # fewer parallel lanes than the discrete GPU: assume the FPGA's
        # saturation scale rather than the GTX660's
        saturation_options=1e5,
    )


def embedded_device(
    spec: EmbeddedSpec,
    kernel_arch: str = "iv_b",
    precision: str = Precision.DOUBLE,
) -> Device:
    """Simulated OpenCL :class:`Device` for a future-work target."""
    model = embedded_compute_model(spec, kernel_arch, precision)
    return Device(
        name=spec.name,
        device_type=spec.device_type,
        compute_units=spec.compute_units,
        global_mem_bytes=spec.memory.capacity_bytes,
        local_mem_bytes=spec.local_mem_bytes,
        max_work_group_size=spec.max_work_group_size,
        timing_model=model,
        double_precision=True,
    )
