"""Host<->device interconnect (PCIe) model.

Kernel IV.A's throughput collapse is caused by reading one full
ping-pong buffer (~19 MB at N=1024) over PCIe between every batch, so
the link model matters more than anything else for experiment E7.

The model is ``time = latency + bytes / effective_bandwidth`` with

    effective_bandwidth = lanes * per_lane_rate * efficiency

Per-lane rates follow the paper's Section V.A: 500 MB/s per lane for
PCIe gen2 (DE4: x4 -> 2 GB/s max) and 985 MB/s per lane for gen3
(GTX660: x16).  ``efficiency`` folds protocol overhead, pageable-host-
memory staging and per-batch driver synchronisation into one effective
number; the defaults used by the catalog devices are calibrated from
the paper's kernel IV.A operating points (see the constants in
``repro.devices.fpga`` / ``gpu``) and documented there.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceModelError
from ..obs import keys as obs_keys
from ..obs.metrics import get_registry
from ..opencl.types import TransferDirection

__all__ = [
    "PCIeLink",
    "PCIE_LANE_RATE_BYTES_S",
    "install_fault_injector",
    "clear_fault_injector",
    "installed_fault_injector",
]

#: Module-level transport fault injector (see
#: :class:`repro.engine.faults.TransportFaultInjector`).  ``PCIeLink``
#: is a frozen value object shared by every modeled device, so fault
#: injection hooks in here rather than on instances; tests install an
#: injector around a block and clear it in a ``finally``.
_FAULT_INJECTOR = None


def install_fault_injector(injector):
    """Route every subsequent link transfer through ``injector``.

    The injector's ``on_transfer(nbytes, direction)`` may raise
    :class:`~repro.errors.TransportFaultError` to simulate a failed
    PCIe transaction.  Returns the previously installed injector (so
    callers can restore it).
    """
    global _FAULT_INJECTOR
    previous, _FAULT_INJECTOR = _FAULT_INJECTOR, injector
    return previous


def clear_fault_injector() -> None:
    """Remove any installed link fault injector."""
    global _FAULT_INJECTOR
    _FAULT_INJECTOR = None


def installed_fault_injector():
    """The currently installed injector, or ``None``."""
    return _FAULT_INJECTOR

#: Usable per-lane data rate (bytes/s) by PCIe generation, matching the
#: figures quoted in the paper (500 MB/s gen2, 985 MB/s gen3).
PCIE_LANE_RATE_BYTES_S = {
    1: 250e6,
    2: 500e6,
    3: 985e6,
}


@dataclass(frozen=True)
class PCIeLink:
    """A PCIe connection between host and device.

    :param generation: PCIe generation (1, 2 or 3).
    :param lanes: lane count (x1..x16).
    :param efficiency: fraction of theoretical bandwidth actually
        achieved for the workload's transfer pattern (0 < e <= 1).
    :param latency_ns: fixed per-transfer setup cost (driver + DMA
        descriptor), paid once per enqueue.
    """

    generation: int
    lanes: int
    efficiency: float = 0.8
    latency_ns: float = 10_000.0

    def __post_init__(self) -> None:
        if self.generation not in PCIE_LANE_RATE_BYTES_S:
            raise DeviceModelError(f"unsupported PCIe generation {self.generation}")
        if not 1 <= self.lanes <= 16:
            raise DeviceModelError(f"lanes must be in [1, 16], got {self.lanes}")
        if not 0.0 < self.efficiency <= 1.0:
            raise DeviceModelError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.latency_ns < 0:
            raise DeviceModelError("latency cannot be negative")

    @property
    def theoretical_bandwidth_bytes_s(self) -> float:
        """Peak link bandwidth (lanes x per-lane rate)."""
        return self.lanes * PCIE_LANE_RATE_BYTES_S[self.generation]

    @property
    def effective_bandwidth_bytes_s(self) -> float:
        """Bandwidth after the calibrated efficiency factor."""
        return self.theoretical_bandwidth_bytes_s * self.efficiency

    def transfer_ns(self, nbytes: int, direction: TransferDirection) -> float:
        """Simulated duration of one transfer.

        Device-to-device copies stay on the board and do not cross
        PCIe; they are charged only the setup latency.
        """
        if nbytes < 0:
            raise DeviceModelError("transfer size cannot be negative")
        if _FAULT_INJECTOR is not None:
            _FAULT_INJECTOR.on_transfer(nbytes, direction)
        # the link is a frozen value object shared by every modeled
        # device, so — like fault injection above — metrics go to the
        # process-wide registry rather than to instance state
        registry = get_registry()
        registry.counter(
            obs_keys.PCIE_TRANSFERS_TOTAL,
            "Simulated link transfers by direction",
        ).inc(1, direction=direction.value)
        if direction is TransferDirection.DEVICE_TO_DEVICE:
            return self.latency_ns
        registry.counter(
            obs_keys.PCIE_BYTES_TOTAL,
            "Simulated bytes crossing the PCIe link by direction",
        ).inc(nbytes, direction=direction.value)
        return self.latency_ns + nbytes / self.effective_bandwidth_bytes_s * 1e9
