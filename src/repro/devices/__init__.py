"""Calibrated performance & energy models of the paper's hardware.

Three execution targets (Section V.A of the paper):

* :mod:`~repro.devices.fpga` — Terasic DE4 board, Stratix IV 4SGX530;
* :mod:`~repro.devices.gpu` — NVIDIA GTX660 Ti;
* :mod:`~repro.devices.cpu` — single-core Xeon X5450 reference.

Each exposes a ``*_compute_model`` factory returning a
:class:`~repro.devices.base.ComputeModel` (timing + power for one
kernel/precision configuration) and a ``*_device`` factory returning a
simulated OpenCL :class:`~repro.opencl.device.Device` wired to it.
Every free constant is pinned in :mod:`~repro.devices.calibration`.
"""

from . import calibration
from .base import ComputeModel, Precision
from .cpu import XEON_X5450, CpuSpec, cpu_compute_model, cpu_device
from .ddr import DE4_DDR2, GTX660_GDDR5, MemorySystem
from .embedded import (
    MALI_T604,
    TI_C6678,
    EmbeddedSpec,
    embedded_compute_model,
    embedded_device,
)
from .fpga import (
    DE4_BOARD,
    KERNEL_A_PAPER_POINT,
    KERNEL_B_PAPER_POINT,
    FpgaBoardSpec,
    FpgaOperatingPoint,
    fpga_compute_model,
    fpga_device,
)
from .gpu import GTX660_TI, GpuSpec, gpu_compute_model, gpu_device
from .link import PCIE_LANE_RATE_BYTES_S, PCIeLink

__all__ = [
    "calibration",
    "ComputeModel",
    "Precision",
    "PCIeLink",
    "PCIE_LANE_RATE_BYTES_S",
    "MemorySystem",
    "DE4_DDR2",
    "GTX660_GDDR5",
    "EmbeddedSpec",
    "TI_C6678",
    "MALI_T604",
    "embedded_compute_model",
    "embedded_device",
    "FpgaBoardSpec",
    "FpgaOperatingPoint",
    "DE4_BOARD",
    "KERNEL_A_PAPER_POINT",
    "KERNEL_B_PAPER_POINT",
    "fpga_compute_model",
    "fpga_device",
    "GpuSpec",
    "GTX660_TI",
    "gpu_compute_model",
    "gpu_device",
    "CpuSpec",
    "XEON_X5450",
    "cpu_compute_model",
    "cpu_device",
]
