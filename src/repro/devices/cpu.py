"""Intel Xeon X5450 device model (the paper's software reference).

The reference software is a single-threaded C program on one core of a
3.0 GHz quad-core Xeon X5450 (TDP 120 W, paper reference [15]).  The
model is a cycles-per-node-update machine; the two per-precision
calibrations come straight from Table II's reference-software column
(see :mod:`repro.devices.calibration` for the arithmetic and the note
on the single-precision inversion).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..opencl.device import Device
from ..opencl.types import DeviceType
from . import calibration as cal
from .base import ComputeModel, Precision
from .link import PCIeLink

__all__ = ["CpuSpec", "XEON_X5450", "cpu_compute_model", "cpu_device"]


@dataclass(frozen=True)
class CpuSpec:
    """Static datasheet numbers of the reference CPU."""

    name: str
    cores: int
    clock_hz: float
    tdp_w: float
    cycles_per_node: dict


XEON_X5450 = CpuSpec(
    name="Intel Xeon X5450 (1 core)",
    cores=1,  # the paper uses a single core of the quad-core part
    clock_hz=3.0e9,
    tdp_w=120.0,
    cycles_per_node={
        Precision.DOUBLE: cal.CPU_CYCLES_PER_NODE_DOUBLE,
        Precision.SINGLE: cal.CPU_CYCLES_PER_NODE_SINGLE,
    },
)

#: Host and device are the same machine: a loopback "link" with memcpy
#: bandwidth and negligible latency.
_LOOPBACK = PCIeLink(generation=3, lanes=16, efficiency=1.0, latency_ns=200.0)


def cpu_compute_model(
    precision: str = Precision.DOUBLE,
    spec: CpuSpec = XEON_X5450,
) -> ComputeModel:
    """Calibrated :class:`ComputeModel` for the software reference."""
    Precision.check(precision)
    node_rate = spec.clock_hz * spec.cores / spec.cycles_per_node[precision]
    return ComputeModel(
        name=f"{spec.name} / reference software / {precision}",
        node_rate_per_s=node_rate,
        power_w=spec.tdp_w,
        link=_LOOPBACK,
        launch_overhead_ns=0.0,
        precision=precision,
        # A sequential program has no pipeline to fill: it is "saturated"
        # from the first option.
        saturation_options=1.0,
    )


def cpu_device(
    precision: str = Precision.DOUBLE,
    spec: CpuSpec = XEON_X5450,
) -> Device:
    """Simulated OpenCL :class:`Device` for the CPU reference."""
    model = cpu_compute_model(precision, spec)
    return Device(
        name=spec.name,
        device_type=DeviceType.CPU,
        compute_units=spec.cores,
        global_mem_bytes=8 * 1024**3,
        local_mem_bytes=32 * 1024,
        max_work_group_size=8192,
        timing_model=model,
        double_precision=True,
    )
