"""Compiler options: the three Altera parallelisation knobs.

Section V.B of the paper: *"Loop unrolling, replication and
vectorization are 3 parameters that help reach the best compromise
between resource utilization, latency and throughput."*  The paper's
chosen points are kernel IV.A vectorised x2 + replicated x3 and kernel
IV.B unrolled x2 + vectorised x4.

Constraints enforced here mirror the real compiler's:
``num_simd_work_items`` must be a power of two and divide the
work-group size; replication and unrolling must be positive.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompileOptionError

__all__ = ["CompileOptions", "KERNEL_A_OPTIONS", "KERNEL_B_OPTIONS"]


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CompileOptions:
    """One point of the vectorise/replicate/unroll design space.

    :param num_simd_work_items: SIMD vectorisation width (``V``);
        replicates the datapath inside one compute unit with shared
        control, and widens memory accesses (eases coalescing).
    :param num_compute_units: full pipeline replication (``R``);
        independent compute units with private control and LSUs.
    :param unroll: innermost-loop unroll factor (``U``); replicates the
        loop-body segment only.
    """

    num_simd_work_items: int = 1
    num_compute_units: int = 1
    unroll: int = 1

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.num_simd_work_items):
            raise CompileOptionError(
                f"num_simd_work_items must be a power of two, got "
                f"{self.num_simd_work_items} (compiler restriction, paper V.B)"
            )
        if self.num_compute_units < 1:
            raise CompileOptionError("num_compute_units must be >= 1")
        if self.unroll < 1:
            raise CompileOptionError("unroll must be >= 1")

    def validate_against(self, work_group_size: int) -> None:
        """SIMD width must divide the work-group size (paper V.B)."""
        if work_group_size % self.num_simd_work_items != 0:
            raise CompileOptionError(
                f"SIMD width {self.num_simd_work_items} does not divide "
                f"work-group size {work_group_size}"
            )

    @property
    def parallel_lanes(self) -> int:
        """Node updates retired per clock once the pipeline is full."""
        return self.num_simd_work_items * self.num_compute_units * self.unroll

    def describe(self) -> str:
        parts = []
        if self.num_simd_work_items > 1:
            parts.append(f"vectorized x{self.num_simd_work_items}")
        if self.num_compute_units > 1:
            parts.append(f"replicated x{self.num_compute_units}")
        if self.unroll > 1:
            parts.append(f"unrolled x{self.unroll}")
        return ", ".join(parts) or "baseline (no parallelisation)"


#: Paper Section V.B: "Kernel IV.A has been vectorized twice and
#: replicated 3 times to use the maximum possible resources."
KERNEL_A_OPTIONS = CompileOptions(num_simd_work_items=2, num_compute_units=3)

#: "Kernel IV.B contains an internal loop, which has been unrolled
#: twice, coupled with a 4 times vectorization of the kernel."
KERNEL_B_OPTIONS = CompileOptions(num_simd_work_items=4, unroll=2)
