"""HLS compiler model: an ``aoc``/Quartus surrogate for Table I.

Turns a structural kernel description (:class:`~repro.hls.ir.KernelIR`)
plus the three Altera parallelisation knobs
(:class:`~repro.hls.options.CompileOptions`) into resource usage, an
achievable clock and a power estimate on a chosen FPGA part —
everything the paper's Table I reports.  See
``repro.core.kernel_a/kernel_b`` for the IRs of the paper's two
kernels.
"""

from .compiler import CompiledKernel, compile_kernel
from .fitter import FitResult, estimate_fmax, run_fitter
from .ir import GlobalAccess, KernelIR, LiveSet, LocalMemSystem, OpCount
from .opcosts import OP_COSTS, OpCost, op_cost
from .options import KERNEL_A_OPTIONS, KERNEL_B_OPTIONS, CompileOptions
from .parts import EP4SGX230, EP4SGX530, M9K_BITS, M144K_BITS, FpgaPart, get_part
from .pipeline import PipelineEstimate, estimate_pipeline
from .power import PowerEstimate, estimate_power
from .resources import ResourceBreakdown, ResourceReport, estimate_resources

__all__ = [
    "CompiledKernel",
    "compile_kernel",
    "FitResult",
    "run_fitter",
    "estimate_fmax",
    "KernelIR",
    "OpCount",
    "GlobalAccess",
    "LocalMemSystem",
    "LiveSet",
    "OpCost",
    "OP_COSTS",
    "op_cost",
    "CompileOptions",
    "KERNEL_A_OPTIONS",
    "KERNEL_B_OPTIONS",
    "FpgaPart",
    "EP4SGX530",
    "EP4SGX230",
    "M9K_BITS",
    "M144K_BITS",
    "get_part",
    "PipelineEstimate",
    "estimate_pipeline",
    "PowerEstimate",
    "estimate_power",
    "ResourceReport",
    "ResourceBreakdown",
    "estimate_resources",
]
