"""Top-level HLS compile: IR + options + part -> CompiledKernel.

This is the simulator's stand-in for ``aoc`` (Altera's OpenCL
compiler) followed by the Quartus fitter and power estimator.  The
returned :class:`CompiledKernel` carries everything Table I reports —
resources, Fmax, power — plus the ``parallel_lanes`` figure that the
device performance models consume (it satisfies the
``FpgaOperatingPoint`` duck type of :mod:`repro.devices.fpga`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .fitter import FitResult, run_fitter
from .ir import KernelIR
from .options import CompileOptions
from .parts import EP4SGX530, FpgaPart
from .pipeline import PipelineEstimate, estimate_pipeline
from .power import PowerEstimate, estimate_power
from .resources import ResourceReport, estimate_resources

__all__ = ["CompiledKernel", "compile_kernel"]


@dataclass(frozen=True)
class CompiledKernel:
    """Everything the tools report about one compiled kernel."""

    ir: KernelIR
    options: CompileOptions
    part: FpgaPart
    pipeline: PipelineEstimate
    resources: ResourceReport
    fit: FitResult
    power: PowerEstimate

    # -- FpgaOperatingPoint duck type (repro.devices.fpga) -------------------

    @property
    def fmax_hz(self) -> float:
        return self.fit.fmax_hz

    @property
    def parallel_lanes(self) -> int:
        return self.options.parallel_lanes

    @property
    def power_w(self) -> float:
        return self.power.total_w

    # -- reporting ------------------------------------------------------------

    def fitter_summary(self) -> str:
        """Quartus-Fitter-Summary-style text block (Table I's source)."""
        r = self.resources
        return "\n".join(
            [
                f"; Fitter Summary ({self.ir.name}, {self.options.describe()})",
                f"; Device                 : {self.part.name}",
                f"; Logic utilization      : {r.logic_utilization:.0%}",
                f"; Registers              : {r.registers:,} / {self.part.registers:,}",
                f"; Memory bits            : {r.memory_bits:,} / {self.part.memory_bits:,}"
                f" ({r.memory_bit_utilization:.0%})",
                f"; M9K blocks             : {r.m9k_blocks:,} / {self.part.m9k_blocks:,}"
                f" ({r.m9k_utilization:.0%})",
                f"; DSP 18-bit elements    : {r.dsp_18bit:,} / {self.part.dsp_18bit:,}"
                f" ({r.dsp_utilization:.0%})",
                f"; Clock frequency        : {self.fit.fmax_mhz:.2f} MHz",
                f"; Estimated power        : {self.power.total_w:.1f} W",
            ]
        )


def compile_kernel(
    ir: KernelIR,
    options: CompileOptions | None = None,
    part: FpgaPart = EP4SGX530,
    allow_overflow: bool = False,
) -> CompiledKernel:
    """Compile ``ir`` for ``part`` under ``options``.

    :param allow_overflow: let over-capacity design points through for
        design-space exploration (their Fmax/power are extrapolations).
    :raises FitError: when the design does not fit and overflow is not
        allowed.
    :raises CompileOptionError: for inconsistent options.
    """
    options = options or CompileOptions()
    options.validate_against(ir.work_group_size)
    pipeline = estimate_pipeline(ir, options)
    resources = estimate_resources(ir, options, pipeline, part)
    fit = run_fitter(resources, allow_overflow=allow_overflow)
    power = estimate_power(resources, fit.fmax_hz)
    return CompiledKernel(
        ir=ir,
        options=options,
        part=part,
        pipeline=pipeline,
        resources=resources,
        fit=fit,
        power=power,
    )
