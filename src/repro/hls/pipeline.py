"""Pipeline assembly: depth, initiation interval and LSU behaviour.

The Altera OpenCL compiler builds one deep pipeline per kernel and
streams work-items through it, one per clock per SIMD lane (initiation
interval II = 1 for both of the paper's kernels — neither has a
loop-carried dependency the compiler cannot pipeline around within a
work-item).  Pipeline *depth* matters because every stage registers
the live values; it is the main register consumer (see
:mod:`repro.hls.opcosts`).

IR semantics: entries of a segment are a *serial chain* (each entry's
latency adds to the depth); ``OpCount.count`` are parallel instances
at that stage (they add resources, not depth).
"""

from __future__ import annotations

from dataclasses import dataclass

from .ir import GlobalAccess, KernelIR
from .opcosts import op_cost
from .options import CompileOptions

__all__ = [
    "PipelineEstimate",
    "estimate_pipeline",
    "COALESCED_LOAD_LATENCY",
    "COALESCED_STORE_LATENCY",
    "SIMPLE_LOAD_LATENCY",
    "SIMPLE_STORE_LATENCY",
    "LOCAL_ACCESS_LATENCY",
    "ADDRESS_LATENCY",
]

#: Coalescing LSUs (kernel IV.A's DDR-facing burst units) add deep
#: reorder/burst stages; simple LSUs (kernel IV.B's few accesses) are
#: shallow.  Local memory sits behind the on-chip interconnect.
COALESCED_LOAD_LATENCY = 60
COALESCED_STORE_LATENCY = 15
SIMPLE_LOAD_LATENCY = 20
SIMPLE_STORE_LATENCY = 10
LOCAL_ACCESS_LATENCY = 4
ADDRESS_LATENCY = 3


@dataclass(frozen=True)
class PipelineEstimate:
    """Depth/II summary of a compiled kernel pipeline."""

    depth_stages: int
    initiation_interval: int
    init_depth: int
    body_depth: int

    @property
    def fill_cycles(self) -> int:
        """Cycles before the first result emerges (pipeline latency)."""
        return self.depth_stages


def _segment_depth(ops, precision: str) -> int:
    """Serial-chain latency of one IR segment."""
    return sum(op_cost(entry.op, precision).latency for entry in ops)


def _access_depth(access: GlobalAccess) -> int:
    if access.kind == "load":
        base = COALESCED_LOAD_LATENCY if access.coalesced else SIMPLE_LOAD_LATENCY
    else:
        base = COALESCED_STORE_LATENCY if access.coalesced else SIMPLE_STORE_LATENCY
    return ADDRESS_LATENCY + base


def estimate_pipeline(ir: KernelIR, options: CompileOptions) -> PipelineEstimate:
    """Depth of the kernel pipeline under the given compile options.

    Unrolling chains ``unroll`` copies of the body segment serially
    (the paper's kernel IV.B carries ``S`` and the value row from one
    unrolled iteration into the next); SIMD vectorisation and compute-
    unit replication widen the pipeline without deepening it.

    Independent global accesses of one segment issue in *parallel*
    (kernel IV.A's five loads all depend only on the slot id), so a
    segment pays the deepest load plus the deepest store once, not the
    sum over LSUs.
    """
    init_depth = _segment_depth(ir.init_ops, ir.precision)
    body_depth = _segment_depth(ir.body_ops, ir.precision)

    for in_body in (False, True):
        accesses = [a for a in ir.global_accesses if a.in_body == in_body]
        loads = [_access_depth(a) for a in accesses if a.kind == "load"]
        stores = [_access_depth(a) for a in accesses if a.kind == "store"]
        depth = (max(loads) if loads else 0) + (max(stores) if stores else 0)
        if in_body:
            body_depth += depth
        else:
            init_depth += depth

    for _local in ir.local_memory:
        body_depth += LOCAL_ACCESS_LATENCY

    total = init_depth + options.unroll * body_depth
    return PipelineEstimate(
        depth_stages=total,
        initiation_interval=1,
        init_depth=init_depth,
        body_depth=body_depth,
    )
