"""Quartus-fitter surrogate: fit check and Fmax estimation.

The real fitter's achievable clock collapses as the device fills up
(routing congestion, longer nets).  The surrogate uses

    fmax = base_fmax * (1 - A * utilization**B)

with ``(A, B)`` pinned against the paper's two Table I operating
points: 99% utilisation -> 98.27 MHz and 66% -> 162.62 MHz on a part
whose near-empty pipelines close around 240 MHz.  Solving the two
equations gives A = 0.600, B = 1.49.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FitError
from .parts import FpgaPart
from .resources import ResourceReport

__all__ = ["FitResult", "run_fitter", "FMAX_DERATE_A", "FMAX_DERATE_B", "MIN_FMAX_HZ"]

FMAX_DERATE_A = 0.600
FMAX_DERATE_B = 1.49
#: No real design on this family closes below ~50 MHz; the surrogate
#: floors there instead of going negative at (extrapolated) >100% fills.
MIN_FMAX_HZ = 50e6


@dataclass(frozen=True)
class FitResult:
    """Outcome of the place-and-route surrogate."""

    report: ResourceReport
    fmax_hz: float
    utilization: float

    @property
    def fmax_mhz(self) -> float:
        return self.fmax_hz / 1e6


def estimate_fmax(part: FpgaPart, utilization: float) -> float:
    """Utilisation-derated clock estimate (see module docstring)."""
    derate = 1.0 - FMAX_DERATE_A * max(0.0, utilization) ** FMAX_DERATE_B
    return max(MIN_FMAX_HZ, part.base_fmax_hz * derate)


def run_fitter(report: ResourceReport, allow_overflow: bool = False) -> FitResult:
    """Check capacity and estimate the achieved clock.

    :param allow_overflow: design-space-exploration sweeps may want the
        (hypothetical) report for over-capacity points instead of an
        exception; real compiles leave this False.
    :raises FitError: when the design exceeds the part and overflow is
        not allowed.
    """
    if not report.fits() and not allow_overflow:
        raise FitError(
            f"design does not fit {report.part.name}: "
            f"{report.overflow_description()}"
        )
    utilization = report.logic_utilization
    return FitResult(
        report=report,
        fmax_hz=estimate_fmax(report.part, utilization),
        utilization=utilization,
    )
