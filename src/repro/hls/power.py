"""quartus_pow surrogate: static + dynamic power estimation.

The paper reads kernel power from the Quartus Power Estimation tool
(15 W for kernel IV.A, 17 W for IV.B) and notes the figures are upper
bounds covering the FPGA chip only.  The surrogate uses the standard
CMOS decomposition

    P = P_static + f * (c_logic * ALMs + c_dsp * DSPs) * toggle

with the logic and DSP activity coefficients pinned against the two
Table I points (static power of a Stratix IV 530K-LE part is ~3 W):

    15 = 3 + 0.09827 GHz * (c_logic * 212.1 kALM + c_dsp * 586)
    17 = 3 + 0.16262 GHz * (c_logic * 140.2 kALM + c_dsp * 760)

giving c_logic = 0.546 W/GHz/kALM and c_dsp = 0.0127 W/GHz/DSP.
Block-RAM dynamic power is folded into the logic coefficient (the two
kernels use comparable M9K counts, so the data cannot separate it).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HLSError
from .resources import ResourceReport

__all__ = ["PowerEstimate", "estimate_power",
           "STATIC_POWER_W", "LOGIC_COEFF_W_PER_GHZ_KALM", "DSP_COEFF_W_PER_GHZ"]

STATIC_POWER_W = 3.0
LOGIC_COEFF_W_PER_GHZ_KALM = 0.546
DSP_COEFF_W_PER_GHZ = 0.0127


@dataclass(frozen=True)
class PowerEstimate:
    """Breakdown of the estimated chip power."""

    static_w: float
    dynamic_logic_w: float
    dynamic_dsp_w: float

    @property
    def total_w(self) -> float:
        return self.static_w + self.dynamic_logic_w + self.dynamic_dsp_w


def estimate_power(report: ResourceReport, fmax_hz: float,
                   toggle_rate: float = 1.0) -> PowerEstimate:
    """Estimate chip power at clock ``fmax_hz``.

    :param toggle_rate: relative switching activity (1.0 = the
        calibration workload); the energy-workaround experiment (E9)
        lowers the clock, not the toggle rate.

    Static power comes from the report's part (smaller dies leak less
    — the board-selection workaround of experiment E15).
    """
    if fmax_hz <= 0:
        raise HLSError("fmax must be positive")
    if toggle_rate < 0:
        raise HLSError("toggle_rate cannot be negative")
    f_ghz = fmax_hz / 1e9
    logic = f_ghz * LOGIC_COEFF_W_PER_GHZ_KALM * (report.alms / 1000.0) * toggle_rate
    dsp = f_ghz * DSP_COEFF_W_PER_GHZ * report.dsp_18bit * toggle_rate
    return PowerEstimate(
        static_w=report.part.static_power_w,
        dynamic_logic_w=logic,
        dynamic_dsp_w=dsp,
    )
