"""Per-operation resource/latency cost tables (Stratix IV, OpenCL 13.0).

Costs approximate what Altera's 13.0-era floating-point megafunctions
consume on Stratix IV: adders live in soft logic, multipliers map a
54x54 partial-product array onto 18-bit DSP elements, and the
transcendental operators (exp/log, composed into pow) combine
table-lookup M9K usage with polynomial DSP chains.  Exact per-op
numbers are not published per kernel, so the table is an estimate from
megafunction user guides; the *end-to-end* design totals are what the
reproduction validates against the paper's Table I (see
``benchmarks/test_table1_resources.py``).

Latency is in pipeline stages at the kernel clock; the compiler sums
latencies along the work-item datapath to obtain the pipeline depth,
which in turn drives the dominant register cost (every stage registers
all live values — the reason the paper's kernel IV.A fills 411 K
registers with only a handful of arithmetic operators).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HLSError

__all__ = ["OpCost", "OP_COSTS", "op_cost"]


@dataclass(frozen=True)
class OpCost:
    """Resource and latency footprint of one hardware operator."""

    aluts: int
    registers: int
    dsp_18bit: int
    memory_bits: int
    latency: int


#: keyed by ``"<precision>_<op>"`` with precision ``dp`` or ``sp``.
OP_COSTS: dict = {
    # double precision ------------------------------------------------------
    "dp_add": OpCost(aluts=1400, registers=1400, dsp_18bit=0, memory_bits=0, latency=14),
    "dp_sub": OpCost(aluts=1400, registers=1400, dsp_18bit=0, memory_bits=0, latency=14),
    "dp_mul": OpCost(aluts=800, registers=1500, dsp_18bit=16, memory_bits=0, latency=11),
    "dp_div": OpCost(aluts=6200, registers=9500, dsp_18bit=14, memory_bits=0, latency=33),
    "dp_max": OpCost(aluts=650, registers=300, dsp_18bit=0, memory_bits=0, latency=3),
    "dp_cmp": OpCost(aluts=500, registers=200, dsp_18bit=0, memory_bits=0, latency=2),
    "dp_exp": OpCost(aluts=5200, registers=7800, dsp_18bit=27, memory_bits=36_864, latency=26),
    "dp_log": OpCost(aluts=5600, registers=8400, dsp_18bit=27, memory_bits=36_864, latency=29),
    # pow = exp(y*log(x)): log + mul + exp fused as one operator.  The
    # 13.0 implementation is compact (the very compactness behind its
    # accuracy defect, Section V.C): shared tables, shortened exponent
    # path.
    "dp_pow": OpCost(aluts=7_000, registers=6_500, dsp_18bit=70, memory_bits=36_864, latency=60),
    # single precision ------------------------------------------------------
    "sp_add": OpCost(aluts=650, registers=900, dsp_18bit=0, memory_bits=0, latency=10),
    "sp_sub": OpCost(aluts=650, registers=900, dsp_18bit=0, memory_bits=0, latency=10),
    "sp_mul": OpCost(aluts=300, registers=600, dsp_18bit=4, memory_bits=0, latency=8),
    "sp_div": OpCost(aluts=2200, registers=3400, dsp_18bit=6, memory_bits=0, latency=22),
    "sp_max": OpCost(aluts=330, registers=150, dsp_18bit=0, memory_bits=0, latency=2),
    "sp_cmp": OpCost(aluts=250, registers=100, dsp_18bit=0, memory_bits=0, latency=1),
    "sp_exp": OpCost(aluts=1900, registers=2700, dsp_18bit=10, memory_bits=18_432, latency=17),
    "sp_log": OpCost(aluts=2100, registers=3000, dsp_18bit=10, memory_bits=18_432, latency=20),
    "sp_pow": OpCost(aluts=4400, registers=6400, dsp_18bit=26, memory_bits=36_864, latency=47),
    # integer / control (precision-independent) -----------------------------
    "int_add": OpCost(aluts=64, registers=64, dsp_18bit=0, memory_bits=0, latency=1),
    "int_mul": OpCost(aluts=100, registers=130, dsp_18bit=4, memory_bits=0, latency=3),
    "int_cmp": OpCost(aluts=40, registers=32, dsp_18bit=0, memory_bits=0, latency=1),
    "select": OpCost(aluts=70, registers=64, dsp_18bit=0, memory_bits=0, latency=1),
}


def op_cost(op: str, precision: str = "dp") -> OpCost:
    """Cost of ``op`` at ``precision`` (``"dp"`` or ``"sp"``).

    Integer/control ops ignore precision.  Raises :class:`HLSError`
    for unknown operators so IR typos fail loudly.
    """
    if op in OP_COSTS:
        return OP_COSTS[op]
    key = f"{precision}_{op}"
    if key in OP_COSTS:
        return OP_COSTS[key]
    raise HLSError(f"no cost entry for op {op!r} at precision {precision!r}")
