"""Resource aggregation: from IR + options to a Table I-style report.

Cost structure (each term's provenance is commented inline):

* **datapath** — operator costs x SIMD lanes x compute units, with the
  body segment further replicated by the unroll factor;
* **pipeline registers** — depth x live-bits x liveness factor per
  lane: the dominant register term, and the reason the paper's simple
  kernel IV.A fills 99% of the chip;
* **LSUs** — per global access per compute unit; coalescing LSUs carry
  M9K-backed burst buffers (kernel IV.A's main M9K consumer);
* **local memory** — replicated for port bandwidth and for the
  work-groups kept resident to hide barrier turnaround (kernel IV.B's
  main M9K consumer);
* **base system** — PCIe/DDR bridge and kernel interconnect (the BSP).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .ir import KernelIR
from .opcosts import op_cost
from .options import CompileOptions
from .parts import M9K_BITS, FpgaPart
from .pipeline import PipelineEstimate

__all__ = ["ResourceReport", "ResourceBreakdown", "estimate_resources",
           "LSU_COST", "SIMPLE_LSU_COST", "BASE_SYSTEM"]

#: Register liveness factor: not every live value spans every stage;
#: calibrated against Table I's two register totals.
LIVENESS_FACTOR = 0.3

#: Burst-buffer depth (in elements) of a coalescing LSU vs a simple one.
COALESCED_BURST_DEPTH = 4096
SIMPLE_BURST_DEPTH = 512

#: Dual-ported M9K, double-pumped by the 600 MHz memory interconnect
#: (paper V.A): effective ports per local-memory replica.
LOCAL_PORTS_PER_REPLICA = 4


@dataclass(frozen=True)
class _BlockCost:
    aluts: int
    registers: int
    dsp: int


#: A coalescing load/store unit: address generation, tag/burst
#: tracking, reorder and width adaptation.  Calibrated against kernel
#: IV.A (21 of them).
LSU_COST = _BlockCost(aluts=2600, registers=8200, dsp=12)

#: A simple (non-coalescing) LSU: address generation and a shallow
#: FIFO only (kernel IV.B's one-shot parameter read / result write).
SIMPLE_LSU_COST = _BlockCost(aluts=1000, registers=3000, dsp=4)

#: Board support package: PCIe endpoint + DMA, DDR2 controllers,
#: kernel interconnect, snoop logic.
BASE_SYSTEM = {
    "aluts": 30_000,
    "registers": 40_000,
    "dsp": 0,
    "memory_bits": 100_000,
    "m9k": 40,
}

#: Barrier controller for work-group-synchronising kernels.
BARRIER_COST = _BlockCost(aluts=1200, registers=5000, dsp=0)


@dataclass(frozen=True)
class ResourceBreakdown:
    """Where the registers/M9Ks went — one row per cost source.

    Keys: ``datapath`` (operator instances), ``pipeline`` (stage
    registers), ``lsu`` (load/store units incl. burst buffers),
    ``local_memory`` (replicated per-group arrays), ``barrier``,
    ``tables`` (transcendental ROMs) and ``base`` (the BSP).
    """

    registers: dict
    memory_bits: dict
    dsp: dict

    def dominant_register_source(self) -> str:
        """The largest register consumer (the paper's kernel IV.A story:
        pipeline registers, not arithmetic, fill the chip)."""
        return max(self.registers, key=self.registers.get)

    def dominant_memory_source(self) -> str:
        return max(self.memory_bits, key=self.memory_bits.get)


@dataclass(frozen=True)
class ResourceReport:
    """Absolute resource usage plus part-relative percentages.

    Mirrors the rows of the paper's Table I.
    """

    part: FpgaPart
    alms: int
    registers: int
    memory_bits: int
    m9k_blocks: int
    m144k_blocks: int
    dsp_18bit: int
    breakdown: "ResourceBreakdown | None" = None

    @property
    def logic_utilization(self) -> float:
        """Fraction of ALMs in use (Table I "Logic utilization")."""
        return self.alms / self.part.alms

    @property
    def register_utilization(self) -> float:
        return self.registers / self.part.registers

    @property
    def memory_bit_utilization(self) -> float:
        return self.memory_bits / self.part.memory_bits

    @property
    def m9k_utilization(self) -> float:
        return self.m9k_blocks / self.part.m9k_blocks

    @property
    def dsp_utilization(self) -> float:
        return self.dsp_18bit / self.part.dsp_18bit

    def fits(self) -> bool:
        """Whether every resource is within the part's capacity."""
        return (
            self.alms <= self.part.alms
            and self.registers <= self.part.registers
            and self.memory_bits <= self.part.memory_bits
            and self.m9k_blocks <= self.part.m9k_blocks
            and self.dsp_18bit <= self.part.dsp_18bit
        )

    def overflow_description(self) -> str:
        """Human-readable list of exceeded resources (empty if fits)."""
        problems = []
        for label, used, cap in (
            ("ALMs", self.alms, self.part.alms),
            ("registers", self.registers, self.part.registers),
            ("memory bits", self.memory_bits, self.part.memory_bits),
            ("M9K blocks", self.m9k_blocks, self.part.m9k_blocks),
            ("DSP elements", self.dsp_18bit, self.part.dsp_18bit),
        ):
            if used > cap:
                problems.append(f"{label}: {used} > {cap} ({used / cap:.0%})")
        return "; ".join(problems)


def _segment_cost(ops, precision: str):
    aluts = regs = dsp = bits = 0
    for entry in ops:
        cost = op_cost(entry.op, precision)
        aluts += cost.aluts * entry.count
        regs += cost.registers * entry.count
        dsp += cost.dsp_18bit * entry.count
        bits += cost.memory_bits * entry.count
    return aluts, regs, dsp, bits


def estimate_resources(
    ir: KernelIR,
    options: CompileOptions,
    pipeline: PipelineEstimate,
    part: FpgaPart,
) -> ResourceReport:
    """Aggregate all resource terms into a :class:`ResourceReport`."""
    simd = options.num_simd_work_items
    cus = options.num_compute_units
    lanes = simd * cus

    reg_src: dict = {}
    mem_src: dict = {}
    dsp_src: dict = {}

    # -- datapath operators ---------------------------------------------------
    init_a, init_r, init_d, init_b = _segment_cost(ir.init_ops, ir.precision)
    body_a, body_r, body_d, body_b = _segment_cost(ir.body_ops, ir.precision)
    aluts = lanes * (init_a + options.unroll * body_a)
    reg_src["datapath"] = lanes * (init_r + options.unroll * body_r)
    dsp_src["datapath"] = lanes * (init_d + options.unroll * body_d)
    mem_src["tables"] = lanes * (init_b + options.unroll * body_b)

    # -- pipeline registers ---------------------------------------------------
    # Every pipeline stage registers the segment's live values; the
    # init and body segments carry different live sets.
    reg_src["pipeline"] = int(
        lanes
        * LIVENESS_FACTOR
        * (
            pipeline.init_depth * ir.init_live.bits
            + options.unroll * pipeline.body_depth * ir.live.bits
        )
    )

    # -- global-memory LSUs ---------------------------------------------------
    m9k = 0
    reg_src["lsu"] = dsp_src["lsu"] = mem_src["lsu"] = 0
    for access in ir.global_accesses:
        count = cus * (options.unroll if access.in_body else 1)
        unit = LSU_COST if access.coalesced else SIMPLE_LSU_COST
        aluts += unit.aluts * count
        reg_src["lsu"] += unit.registers * count
        dsp_src["lsu"] += unit.dsp * count
        if access.coalesced:
            depth = COALESCED_BURST_DEPTH
        else:
            depth = SIMPLE_BURST_DEPTH
        buffer_bits = depth * access.width_bytes * 8 * simd
        mem_src["lsu"] += buffer_bits * count
        m9k += count * math.ceil(buffer_bits / M9K_BITS)

    # -- local memory ---------------------------------------------------------
    reg_src["local_memory"] = mem_src["local_memory"] = 0
    for local in ir.local_memory:
        # Unrolled body copies access the row at *different pipeline
        # stages* (different cycles), so unrolling does not multiply
        # the simultaneous-port requirement — only SIMD lanes do.
        ports = simd * (local.read_ports + local.write_ports)
        replicas = max(1, math.ceil(ports / LOCAL_PORTS_PER_REPLICA))
        copies = replicas * local.resident_groups
        bits_per_copy = local.bytes_per_group * 8
        mem_src["local_memory"] += bits_per_copy * copies
        m9k += copies * math.ceil(bits_per_copy / M9K_BITS)
        # banking/arbitration interconnect
        aluts += 900 * replicas
        reg_src["local_memory"] += 1200 * replicas

    reg_src["barrier"] = 0
    if ir.uses_barriers:
        aluts += BARRIER_COST.aluts * cus
        reg_src["barrier"] = BARRIER_COST.registers * cus

    # -- transcendental lookup tables already counted in memory_bits;
    #    place them into M9K blocks as well
    m9k += math.ceil(mem_src["tables"] / M9K_BITS)

    # -- base system ----------------------------------------------------------
    aluts += BASE_SYSTEM["aluts"]
    reg_src["base"] = BASE_SYSTEM["registers"]
    dsp_src["base"] = BASE_SYSTEM["dsp"]
    mem_src["base"] = BASE_SYSTEM["memory_bits"]
    m9k += BASE_SYSTEM["m9k"]

    registers = sum(reg_src.values())
    dsp = sum(dsp_src.values())
    memory_bits = sum(mem_src.values())

    # -- ALM packing ----------------------------------------------------------
    # Each ALM offers two LUTs and two flip-flops; demand is bounded by
    # the larger of the two, plus a small packing-inefficiency term.
    lut_alms = aluts / 2
    ff_alms = registers / 2
    alms = int(max(lut_alms, ff_alms) + 0.04 * min(lut_alms, ff_alms))

    return ResourceReport(
        part=part,
        alms=alms,
        registers=int(registers),
        memory_bits=int(memory_bits),
        m9k_blocks=int(m9k),
        m144k_blocks=0,
        dsp_18bit=int(dsp),
        breakdown=ResourceBreakdown(
            registers=reg_src, memory_bits=mem_src, dsp=dsp_src,
        ),
    )
