"""Kernel dataflow IR consumed by the HLS compiler model.

A kernel is described at the granularity the Altera OpenCL compiler
reasons about: pipeline *segments* of floating-point/integer operators,
global-memory load/store units, and local-memory systems.  Two
segments exist:

* ``init_ops`` — executed once per work-item (e.g. kernel IV.B's leaf
  initialisation with the ``pow`` operator);
* ``body_ops`` — the innermost loop body (kernel IV.B's backward time
  loop); ``#pragma unroll U`` replicates exactly this segment.

Counts are *operator instances in hardware per SIMD lane*, not dynamic
executions — the compiler model is a structural estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import HLSError

__all__ = ["OpCount", "GlobalAccess", "LocalMemSystem", "LiveSet", "KernelIR"]


@dataclass(frozen=True)
class OpCount:
    """``count`` instances of hardware operator ``op``."""

    op: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise HLSError(f"op count must be >= 1 ({self.op})")


@dataclass(frozen=True)
class GlobalAccess:
    """One global-memory load/store unit (LSU).

    :param kind: ``"load"`` or ``"store"``.
    :param width_bytes: access width per work-item (8 for a double).
    :param coalesced: coalesced LSUs carry a burst/reorder buffer —
        this is how kernel IV.A spends its M9K blocks (paper V.B:
        "kernel IV.A uses those to coalesce its memory accesses to the
        global memory and store its inputs and outputs in shallow
        FIFOs").
    :param in_body: whether the access sits in the loop body (and is
        thus replicated by unrolling).
    """

    kind: str
    width_bytes: int = 8
    coalesced: bool = True
    in_body: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("load", "store"):
            raise HLSError(f"access kind must be load/store, got {self.kind!r}")
        if self.width_bytes < 1:
            raise HLSError("width_bytes must be >= 1")


@dataclass(frozen=True)
class LocalMemSystem:
    """A local-memory system (kernel IV.B's shared option-value row).

    :param bytes_per_group: logical size per work-group.
    :param read_ports: simultaneous reads the datapath issues per cycle
        (per SIMD lane before vectorisation).
    :param write_ports: simultaneous writes per cycle per lane.
    :param resident_groups: work-groups kept in flight by the runtime
        to hide latency; each needs its own copy.
    """

    bytes_per_group: int
    read_ports: int = 1
    write_ports: int = 1
    resident_groups: int = 8

    def __post_init__(self) -> None:
        if self.bytes_per_group < 1:
            raise HLSError("bytes_per_group must be >= 1")
        if self.read_ports < 0 or self.write_ports < 0:
            raise HLSError("port counts cannot be negative")
        if self.resident_groups < 1:
            raise HLSError("resident_groups must be >= 1")


@dataclass(frozen=True)
class LiveSet:
    """Values alive across the pipeline (drives register pressure).

    Altera's pipelines register every live value at every stage, which
    is why register count — not operator logic — dominates Table I.
    """

    f64_values: int = 0
    f32_values: int = 0
    i32_values: int = 0

    @property
    def bits(self) -> int:
        return 64 * self.f64_values + 32 * self.f32_values + 32 * self.i32_values


@dataclass(frozen=True)
class KernelIR:
    """Structural description of one OpenCL kernel.

    :param name: kernel name.
    :param precision: ``"dp"`` or ``"sp"``.
    :param init_ops: operators instantiated once per lane.
    :param body_ops: operators of the innermost loop body (unrollable).
    :param global_accesses: global-memory LSUs.
    :param local_memory: local-memory systems (empty for kernel IV.A).
    :param live: live-value set carried through the *body* pipeline.
    :param live_init: live-value set of the init segment; defaults to
        ``live`` when None (kernel IV.B's leaf path keeps far fewer
        values in flight than its loop body, so splitting matters).
    :param uses_barriers: whether the kernel synchronises work-groups
        (adds barrier controller logic).
    :param work_group_size: compile-time work-group size hint.
    """

    name: str
    precision: str = "dp"
    init_ops: tuple = ()
    body_ops: tuple = ()
    global_accesses: tuple = ()
    local_memory: tuple = ()
    live: LiveSet = field(default_factory=LiveSet)
    live_init: LiveSet | None = None
    uses_barriers: bool = False
    work_group_size: int = 256

    @property
    def init_live(self) -> LiveSet:
        """Live set of the init segment (falls back to ``live``)."""
        return self.live_init if self.live_init is not None else self.live

    def __post_init__(self) -> None:
        if self.precision not in ("dp", "sp"):
            raise HLSError(f"precision must be 'dp' or 'sp', got {self.precision!r}")
        if not self.init_ops and not self.body_ops:
            raise HLSError(f"kernel {self.name!r} has no operators")
        if self.work_group_size < 1:
            raise HLSError("work_group_size must be >= 1")
