"""FPGA part definitions (capacities the fitter checks against).

Capacities of the Stratix IV EP4SGX530 follow Altera's datasheet and
the denominators printed in the paper's Table I: 424 960 registers
(reported there as "415 K" with K=1024), 21 233 664 memory bits
("20 736 K"), 1 024 18-bit DSP elements ("1 K") and 212 480 ALMs (the
basis of the "Logic utilization" percentage; each ALM packs two LUTs
and two flip-flops).

Note: Table I prints the M9K denominator as 1 250 in the kernel IV.A
column and 1 280 in the IV.B column; the datasheet value is 1 280 and
that is what this model uses (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import HLSError

__all__ = ["FpgaPart", "EP4SGX530", "EP4SGX230", "M9K_BITS", "M144K_BITS",
           "get_part"]

#: Capacity of one M9K block RAM (256 x 36 bits, paper Section V.A).
M9K_BITS = 9 * 1024
#: Capacity of one M144K block RAM (2048 x 72 bits, paper Section V.B).
M144K_BITS = 144 * 1024


@dataclass(frozen=True)
class FpgaPart:
    """Resource capacities of one FPGA device."""

    name: str
    alms: int
    registers: int
    memory_bits: int
    m9k_blocks: int
    m144k_blocks: int
    dsp_18bit: int
    #: highest clock a trivially small kernel could close timing at;
    #: the fitter derates from here with utilisation.
    base_fmax_hz: float
    #: leakage power of the (configured, idle) part — smaller dies leak
    #: less, the basis of the paper's "a less power consuming FPGA
    #: board can be selected" workaround (Section V.C / experiment E15)
    static_power_w: float = 3.0

    def __post_init__(self) -> None:
        for field_name in ("alms", "registers", "memory_bits",
                           "m9k_blocks", "m144k_blocks", "dsp_18bit"):
            if getattr(self, field_name) <= 0:
                raise HLSError(f"{field_name} must be positive")
        if self.base_fmax_hz <= 0:
            raise HLSError("base_fmax_hz must be positive")
        if self.static_power_w <= 0:
            raise HLSError("static_power_w must be positive")


EP4SGX530 = FpgaPart(
    name="EP4SGX530",
    alms=212_480,
    registers=424_960,
    memory_bits=21_233_664,
    m9k_blocks=1_280,
    m144k_blocks=64,
    dsp_18bit=1_024,
    base_fmax_hz=240e6,
    static_power_w=3.0,
)

#: Mid-range sibling of the DE4's FPGA: ~43% of the logic, 1,235 M9Ks,
#: a larger DSP array, and roughly half the leakage — the candidate
#: "less power consuming board" of Section V.C's workaround list.
EP4SGX230 = FpgaPart(
    name="EP4SGX230",
    alms=91_200,
    registers=182_400,
    memory_bits=14_625_792,
    m9k_blocks=1_235,
    m144k_blocks=22,
    dsp_18bit=1_288,
    base_fmax_hz=240e6,
    static_power_w=1.6,
)

_PARTS = {EP4SGX530.name: EP4SGX530, EP4SGX230.name: EP4SGX230}


def get_part(name: str) -> FpgaPart:
    """Look up a part by name (case-insensitive)."""
    try:
        return _PARTS[name.upper()]
    except KeyError:
        raise HLSError(
            f"unknown part {name!r}; known parts: {sorted(_PARTS)}"
        ) from None
