"""Declarative sweep specifications: named IV axes crossed full-factorial.

A :class:`SweepSpec` names the independent variables of a design-space
study (steps, precision, kernel, lattice family, option/exercise type,
backend, workers, fault seed, greeks bumps), the value list of each,
and the *constraints* that prune invalid cells — ``kernel IV.B ⇒ CRR``
being the canonical one.  Crossing the axes full-factorial and
dropping the pruned cells yields the grid's *conditions*: one merged
``{axis: value}`` dict per cell, each with a stable human-readable
``cell id`` that the run store keys on.

Specs are wire documents (`repro-sweep-spec/v1`) following the
``docs/wire_schema.md`` conventions: every float is serialised as
``float.hex()`` under an explicit type discriminator, the schema tag
is checked exactly, and unknown axes or unregistered constraint names
are refused with :class:`~repro.errors.SweepError` — never guessed.
Constraints are *named* (looked up in :data:`CONSTRAINTS`) precisely
so a spec round-trips: a lambda cannot cross a process boundary, a
registry name can.

``spec.fingerprint()`` is a short digest of the canonical wire form;
the run store stamps it on every row so a store can never be resumed
against a different grid.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..errors import SweepError

__all__ = [
    "AXIS_NAMES",
    "CONSTRAINTS",
    "DEFAULT_CONSTRAINTS",
    "SPEC_SCHEMA",
    "SweepSpec",
    "cell_id",
    "decode_value",
    "encode_value",
]

#: Schema tag of the spec wire form (see docs/sweeps.md).
SPEC_SCHEMA = "repro-sweep-spec/v1"

#: Axis/base names a spec may use, mapped to the accepted value types.
#: ``option_type``/``exercise`` accept ``"mixed"`` (the synthetic
#: batch's natural blend) in addition to the single-style values.
AXIS_NAMES: "dict[str, tuple[type, ...]]" = {
    "steps": (int,),
    "precision": (str,),
    "kernel": (str,),
    "family": (str,),
    "option_type": (str,),
    "exercise": (str,),
    "task": (str,),
    "backend": (str,),
    "workers": (int, type(None)),
    "fault_seed": (int, type(None)),
    "bump_vol": (float,),
    "bump_rate": (float,),
    "n_options": (int,),
    "seed": (int,),
    "reference_steps": (int, type(None)),
}

#: Base-parameter defaults merged under every cell (axes override).
BASE_DEFAULTS: "dict[str, object]" = {
    "task": "price",
    "n_options": 32,
    "seed": 20140324,
    "backend": "numpy",
    "precision": "double",
    "kernel": "iv_b",
    "family": "crr",
    "option_type": "mixed",
    "exercise": "american",
    "steps": 256,
    "workers": None,
    "fault_seed": None,
    "reference_steps": None,
}


def _iv_b_requires_crr(cell: Mapping) -> bool:
    return cell.get("kernel") != "iv_b" or cell.get("family", "crr") == "crr"


def _min_steps(cell: Mapping) -> bool:
    kernel = cell.get("kernel", "iv_b")
    task = cell.get("task", "price")
    floor = 3 if task == "greeks" else (2 if kernel in ("iv_a", "iv_b") else 1)
    return int(cell.get("steps", 256)) >= floor


def _reference_at_least_steps(cell: Mapping) -> bool:
    reference_steps = cell.get("reference_steps")
    return (reference_steps is None
            or int(reference_steps) >= int(cell.get("steps", 256)))


#: Named constraint predicates (``cell -> keep?``).  Constraints are
#: registered by name so spec documents stay portable; an unregistered
#: name in ``from_dict`` is a :class:`SweepError`, not a silent skip.
CONSTRAINTS: "dict[str, Callable[[Mapping], bool]]" = {
    "iv_b_requires_crr": _iv_b_requires_crr,
    "min_steps": _min_steps,
    "reference_at_least_steps": _reference_at_least_steps,
}

#: Constraints every spec gets unless it opts out explicitly.
DEFAULT_CONSTRAINTS = ("iv_b_requires_crr", "min_steps",
                       "reference_at_least_steps")


# ---------------------------------------------------------------------------
# value codec (the wire-schema float.hex convention)
# ---------------------------------------------------------------------------


def encode_value(value):
    """JSON-encode one axis/result value, floats as tagged ``hex``.

    ``int``/``str``/``bool``/``None`` pass through (JSON carries them
    exactly); a ``float`` becomes ``{"float.hex": value.hex()}`` so
    the bit pattern — including ``-0.0``, denormals, infinities and
    NaN — survives any JSON printer.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return {"float.hex": value.hex()}
    raise SweepError(
        f"sweep values must be int/float/str/bool/None, got "
        f"{type(value).__name__}: {value!r}")


def decode_value(value):
    """Inverse of :func:`encode_value` (bitwise for floats)."""
    if isinstance(value, dict):
        if set(value) != {"float.hex"}:
            raise SweepError(
                f"malformed sweep value {value!r} (expected a single "
                f"'float.hex' discriminator)")
        return float.fromhex(value["float.hex"])
    if isinstance(value, list):
        raise SweepError(f"malformed sweep value {value!r}")
    return value


def _encode_mapping(mapping: Mapping) -> dict:
    return {name: encode_value(value) for name, value in mapping.items()}


def _decode_mapping(mapping: Mapping) -> dict:
    return {name: decode_value(value) for name, value in mapping.items()}


def _render_value(value) -> str:
    """Human-readable but exact rendering for cell ids."""
    if isinstance(value, float):
        return value.hex()
    return str(value)


def cell_id(axes: Sequence[str], cell: Mapping) -> str:
    """Stable identifier of one condition: ``axis=value`` in axis order.

    Only the *swept* axes appear — base parameters are common to every
    cell and already pinned by the spec fingerprint.
    """
    return ",".join(f"{name}={_render_value(cell[name])}" for name in axes)


# ---------------------------------------------------------------------------
# the spec itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """A full-factorial experiment grid with constraint pruning.

    :param name: the study's name (stamped into stores and reports).
    :param axes: mapping ``axis name -> value list``.  Declaration
        order is significant: it fixes both the enumeration order of
        the grid (row-major ``itertools.product``) and the field order
        inside every cell id.
    :param constraints: names from :data:`CONSTRAINTS`; a cell must
        satisfy every listed predicate to survive pruning.
    :param base: fixed parameters merged under every cell (an axis
        with the same name wins).  Unlisted parameters take
        :data:`BASE_DEFAULTS`.
    """

    name: str
    axes: "tuple[tuple[str, tuple], ...]"
    constraints: "tuple[str, ...]" = DEFAULT_CONSTRAINTS
    base: "tuple[tuple[str, object], ...]" = ()

    def __init__(self, name, axes, constraints=DEFAULT_CONSTRAINTS, base=None):
        if not name or not isinstance(name, str):
            raise SweepError(f"spec name must be a non-empty string, "
                             f"got {name!r}")
        if isinstance(axes, Mapping):
            axes = tuple(axes.items())
        axes = tuple((str(axis), tuple(values)) for axis, values in axes)
        if not axes:
            raise SweepError("a sweep needs at least one axis")
        seen = set()
        for axis, values in axes:
            if axis in seen:
                raise SweepError(f"duplicate axis {axis!r}")
            seen.add(axis)
            self._check_parameter(axis, values)
            if not values:
                raise SweepError(f"axis {axis!r} has no values")
            if len(set(map(_render_value, values))) != len(values):
                raise SweepError(f"axis {axis!r} has duplicate values")
        constraints = tuple(constraints)
        for constraint in constraints:
            if constraint not in CONSTRAINTS:
                raise SweepError(
                    f"unknown constraint {constraint!r} (registered: "
                    f"{tuple(sorted(CONSTRAINTS))})")
        if base is None:
            base = ()
        if isinstance(base, Mapping):
            base = tuple(sorted(base.items()))
        else:
            base = tuple(sorted((str(k), v) for k, v in base))
        for parameter, value in base:
            if parameter in seen:
                raise SweepError(
                    f"{parameter!r} is both an axis and a base parameter")
            self._check_parameter(parameter, (value,))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "axes", axes)
        object.__setattr__(self, "constraints", constraints)
        object.__setattr__(self, "base", base)

    @staticmethod
    def _check_parameter(name: str, values: Sequence) -> None:
        if name not in AXIS_NAMES:
            raise SweepError(
                f"unknown sweep parameter {name!r} (known: "
                f"{tuple(sorted(AXIS_NAMES))})")
        accepted = AXIS_NAMES[name]
        for value in values:
            # bool is an int subclass; no sweep parameter is boolean
            if isinstance(value, bool) or not isinstance(value, accepted):
                raise SweepError(
                    f"axis {name!r} accepts "
                    f"{'/'.join(t.__name__ for t in accepted)} values, "
                    f"got {value!r}")

    # -- grid enumeration ------------------------------------------------

    @property
    def axis_names(self) -> "tuple[str, ...]":
        return tuple(axis for axis, _values in self.axes)

    def defaults(self) -> dict:
        """The fixed parameters under every cell (base over defaults)."""
        merged = dict(BASE_DEFAULTS)
        merged.update(dict(self.base))
        return merged

    def grid_size(self) -> int:
        """Full-factorial cell count *before* constraint pruning."""
        size = 1
        for _axis, values in self.axes:
            size *= len(values)
        return size

    def conditions(self) -> "tuple[dict, ...]":
        """The surviving cells, in row-major enumeration order.

        Each condition is the base parameters overlaid with one axis
        combination, plus ``"cell"`` — the stable cell id the run
        store keys on.
        """
        names = self.axis_names
        defaults = self.defaults()
        keep = []
        for combo in itertools.product(*(values for _axis, values
                                         in self.axes)):
            cell = dict(defaults)
            cell.update(zip(names, combo))
            if all(CONSTRAINTS[name](cell) for name in self.constraints):
                cell["cell"] = cell_id(names, cell)
                keep.append(cell)
        return tuple(keep)

    def pruned_count(self) -> int:
        """How many full-factorial cells the constraints dropped."""
        return self.grid_size() - len(self.conditions())

    # -- wire form (`repro-sweep-spec/v1`) -------------------------------

    def to_dict(self) -> dict:
        """JSON-ready wire form, tagged :data:`SPEC_SCHEMA`."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "axes": [[axis, [encode_value(v) for v in values]]
                     for axis, values in self.axes],
            "constraints": list(self.constraints),
            "base": _encode_mapping(dict(self.base)),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        """Rebuild a spec from its wire form (bitwise for floats)."""
        if not isinstance(data, Mapping):
            raise SweepError(
                f"sweep spec document must be a mapping, got "
                f"{type(data).__name__}")
        schema = data.get("schema")
        if schema != SPEC_SCHEMA:
            raise SweepError(
                f"unsupported sweep-spec schema {schema!r} "
                f"(this build speaks {SPEC_SCHEMA!r})")
        try:
            raw_axes = data["axes"]
            # the wire form is a list of [name, values] pairs (order is
            # the cell-id order); hand-written spec files may use a
            # JSON object instead — insertion order carries over
            pairs = raw_axes.items() if isinstance(raw_axes, Mapping) \
                else raw_axes
            axes = tuple(
                (axis, tuple(decode_value(v) for v in values))
                for axis, values in pairs)
            constraints = tuple(data.get("constraints",
                                         DEFAULT_CONSTRAINTS))
            base = _decode_mapping(data.get("base", {}))
            name = data["name"]
        except (KeyError, TypeError, ValueError) as exc:
            raise SweepError(f"malformed sweep-spec document: {exc}") from exc
        return cls(name=name, axes=axes, constraints=constraints, base=base)

    def fingerprint(self) -> str:
        """Short stable digest of the canonical wire form.

        Stamped on every run-store row: two stores resume-compatible
        ⟺ equal fingerprints.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.blake2b(canonical.encode(),
                               digest_size=8).hexdigest()
