"""Built-in sweep specifications: the paper's studies as declarative grids.

The canonical one is the **steps × precision trade-off** — the axis the
paper walks in its accuracy (E8) and precision-ablation (E12)
experiments: tree depth against arithmetic precision, FPGA kernels
against the software reference, with accuracy measured against a
deep double-precision reference lattice and throughput/energy from the
calibrated device models.  What `bench/experiments.py` hard-codes as
two bespoke harnesses is here one :class:`~repro.sweep.SweepSpec` that
any grid (and the ``repro sweep`` CLI) can run, resume and report.

Builtin specs are addressed by name (``repro sweep run --spec
steps-precision``); :func:`builtin_spec` resolves a name, and unknown
names list the registry in the error.
"""

from __future__ import annotations

from ..errors import SweepError
from .spec import SweepSpec

__all__ = ["BUILTIN_SPECS", "builtin_spec", "steps_precision_spec"]


def steps_precision_spec(quick: bool = False) -> SweepSpec:
    """The steps/precision trade-off study as a sweep grid.

    Full variant: depths 128→1024 × {double, single} × {IV.B FPGA
    kernel, software reference}, 64 options per cell, accuracy against
    a 2048-step double reference.  The ``iv_b ⇒ CRR`` constraint is a
    no-op here (base family is CRR) but stays declared so the spec
    documents its own validity envelope.

    ``quick=True`` is the CI/sweep-smoke variant: two depths, two
    precisions, one kernel axis value each and a small batch — the
    same shape, seconds not minutes.
    """
    if quick:
        axes = {
            "steps": (64, 128),
            "precision": ("double", "single"),
            "kernel": ("iv_b", "reference"),
        }
        base = {"n_options": 8, "reference_steps": 256}
    else:
        axes = {
            "steps": (128, 256, 512, 1024),
            "precision": ("double", "single"),
            "kernel": ("iv_b", "reference"),
        }
        base = {"n_options": 64, "reference_steps": 2048}
    return SweepSpec(
        name="steps-precision-quick" if quick else "steps-precision",
        axes=axes,
        base=base,
    )


#: Name -> zero-argument factory of every builtin study.
BUILTIN_SPECS = {
    "steps-precision": steps_precision_spec,
    "steps-precision-quick": lambda: steps_precision_spec(quick=True),
}


def builtin_spec(name: str) -> SweepSpec:
    """Resolve a builtin study by name (:class:`SweepError` if unknown)."""
    factory = BUILTIN_SPECS.get(name)
    if factory is None:
        raise SweepError(
            f"unknown builtin sweep {name!r} (available: "
            f"{tuple(sorted(BUILTIN_SPECS))})")
    return factory()
