"""Frontier reports: accuracy × throughput × modeled energy, from a store.

The report is computed *entirely* from the run store — it never prices
an option.  ``repro sweep report`` therefore works on any machine that
has the JSON-lines file, long after the grid ran, which is the point
of persisting results instead of printing them.

Each ``done`` row contributes one report entry (accuracy from the
in-store RMSE against the double-precision reference; throughput and
energy from the calibrated device models captured at run time).  The
report marks the **Pareto frontier** over (rmse ↓, options/s ↑,
options/J ↑): a cell is on the frontier iff no other done cell is at
least as good on all three axes and strictly better on one — the
steps/precision trade-off surface the paper's E8/E12 studies walk by
hand.
"""

from __future__ import annotations

import math

from ..errors import SweepError
from .store import RunStore

__all__ = ["FRONTIER_SCHEMA", "frontier_report", "render_frontier"]

#: Schema tag of the report document (see docs/sweeps.md).
FRONTIER_SCHEMA = "repro-sweep-frontier/v1"

#: The trade-off axes: ``(result key, direction)`` with ``-1`` =
#: minimise (better when smaller) and ``+1`` = maximise.
_OBJECTIVES = (
    ("rmse", -1),
    ("options_per_second", +1),
    ("options_per_joule", +1),
)


def _objective_vector(entry: dict) -> "tuple[float, ...]":
    """The entry's position in objective space (NaN → worst)."""
    out = []
    for key, direction in _OBJECTIVES:
        value = entry[key]
        if value is None or not math.isfinite(value):
            value = math.inf if direction < 0 else -math.inf
        out.append(direction * float(value))
    return tuple(out)


def _dominates(a: "tuple[float, ...]", b: "tuple[float, ...]") -> bool:
    """True iff ``a`` is ≥ ``b`` everywhere and > somewhere."""
    return all(x >= y for x, y in zip(a, b)) and any(
        x > y for x, y in zip(a, b))


def frontier_report(store: RunStore) -> dict:
    """Build the ``repro-sweep-frontier/v1`` document from a store.

    Pure read: raises :class:`SweepError` on an empty store but never
    executes a condition.
    """
    latest = store.latest()
    if not latest:
        raise SweepError(f"{store.path}: empty run store, nothing to report")

    entries = []
    for cell in sorted(latest):
        row = latest[cell]
        if row.status != "done":
            continue
        condition = row.condition
        result = row.result or {}
        modeled = result.get("modeled") or {}
        entries.append({
            "cell": cell,
            "kernel": condition.get("kernel"),
            "precision": condition.get("precision"),
            "steps": condition.get("steps"),
            "family": condition.get("family"),
            "backend": condition.get("backend"),
            "options": result.get("options"),
            "rmse": result.get("rmse"),
            "max_abs_err": result.get("max_abs_err"),
            "options_per_second": modeled.get("options_per_second"),
            "options_per_joule": modeled.get("options_per_joule"),
            "power_w": modeled.get("power_w"),
            "failures": len(result.get("failures") or ()),
            "pareto": False,
        })

    vectors = [_objective_vector(entry) for entry in entries]
    for index, entry in enumerate(entries):
        entry["pareto"] = not any(
            _dominates(other, vectors[index])
            for j, other in enumerate(vectors) if j != index)

    counts = store.counts()
    return {
        "schema": FRONTIER_SCHEMA,
        "spec": store.spec_fingerprint(),
        "store_fingerprint": store.fingerprint(),
        "cells": counts,
        "entries": entries,
        "pareto_cells": [e["cell"] for e in entries if e["pareto"]],
    }


def _fmt(value, places: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if not math.isfinite(value):
            return str(value)
        return f"{value:.{places}g}"
    return str(value)


def render_frontier(document: dict) -> str:
    """Human-readable table of a :func:`frontier_report` document."""
    from ..bench.tables import render_table

    headers = ("cell", "steps", "kernel", "prec", "rmse",
               "opts/s", "opts/J", "W", "fail", "pareto")
    rows = [
        (entry["cell"], entry["steps"], entry["kernel"], entry["precision"],
         _fmt(entry["rmse"]), _fmt(entry["options_per_second"]),
         _fmt(entry["options_per_joule"]), _fmt(entry["power_w"], 3),
         entry["failures"], "*" if entry["pareto"] else "")
        for entry in document["entries"]
    ]
    counts = document["cells"]
    title = (f"sweep frontier ({counts.get('done', 0)} done, "
             f"{counts.get('failed', 0)} failed; spec {document['spec']})")
    return render_table(headers, rows, title=title)
