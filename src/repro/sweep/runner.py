"""`SweepRunner` — execute a grid as heavy traffic through the service.

Every condition becomes two :class:`~repro.api.PricingRequest`\\ s
submitted to a shared :class:`~repro.service.PricingService`: the
cell's own configuration plus its double-precision reference (the
accuracy yardstick).  Driving the grid through the service buys the
serving stack's machinery for free — coalescing merges compatible
cells into engine-sized flushes, and the content-keyed cache dedups
the reference pricing across every cell that shares ``(steps,
options)``.

Crash-safe resume
-----------------

The runner's only mutable state is the :class:`~repro.sweep.store.
RunStore` file.  Cells run in the spec's enumeration order; each one
appends a ``running`` row, executes, then atomically commits a
``done``/``failed`` row (one fsynced line).  Killing the process at
any point therefore loses at most the in-flight cell; a restart
skips exactly the terminal cells and re-runs the rest.  Because every
result field is a pure function of the spec (prices are bitwise
deterministic — the service asserts as much under coalescing and
healed fault injection), the resumed store's canonical fingerprint
equals an uninterrupted run's, which ``tests/sweep`` and the
``sweep-smoke`` CI job assert.

Conditions that differ in ``fault_seed`` or ``workers`` cannot share
a service (both knobs live in :class:`~repro.service.ServiceConfig`),
so the runner keeps one lazily-built service per ``(fault_seed,
workers)`` group and routes each cell to its group's service.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace as dc_replace

import numpy as np

from ..api import PricingRequest
from ..errors import SweepError, wire_error
from ..obs import keys as obs_keys
from ..obs.metrics import get_registry
from .spec import SweepSpec
from .store import RunStore, SweepRow

__all__ = ["SweepRunner", "SweepStats"]


@dataclass(frozen=True)
class SweepStats:
    """Snapshot of one runner pass under ``repro-sweep-stats/v8``
    (:data:`repro.obs.keys.SWEEP_STATS_KEYS`)."""

    cells: int = 0
    pruned: int = 0
    executed: int = 0
    done: int = 0
    failed: int = 0
    skipped: int = 0
    options: int = 0
    mean_cell_s: float = 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot in :data:`SWEEP_STATS_KEYS` order."""
        out = {"schema": obs_keys.SWEEP_STATS_SCHEMA}
        for key in obs_keys.SWEEP_STATS_KEYS:
            out[key] = getattr(self, key)
        return out


def _cell_seed(base_seed: int, cell: str) -> int:
    """Stable per-cell RNG seed (base seed folded with the cell id)."""
    digest = hashlib.blake2b(cell.encode(), digest_size=4).hexdigest()
    return (int(base_seed) ^ int(digest, 16)) & 0x7FFFFFFF


def _cell_options(condition: dict):
    """The deterministic option batch of one condition."""
    from dataclasses import replace

    from ..finance.market import generate_batch
    from ..finance.options import ExerciseStyle, OptionType

    batch = list(generate_batch(
        n_options=condition["n_options"],
        seed=_cell_seed(condition["seed"], condition["cell"]),
    ).options)
    option_type = condition.get("option_type", "mixed")
    exercise = condition.get("exercise", "american")
    if option_type == "mixed":
        batch = [replace(o, option_type=(OptionType.CALL if i % 2 == 0
                                         else OptionType.PUT))
                 for i, o in enumerate(batch)]
    elif option_type in ("call", "put"):
        batch = [replace(o, option_type=OptionType(option_type))
                 for o in batch]
    else:
        raise SweepError(f"option_type must be call/put/mixed, "
                         f"got {option_type!r}")
    if exercise == "mixed":
        batch = [replace(o, exercise=(ExerciseStyle.AMERICAN if i % 2 == 0
                                      else ExerciseStyle.EUROPEAN))
                 for i, o in enumerate(batch)]
    elif exercise in ("american", "european"):
        batch = [replace(o, exercise=ExerciseStyle(exercise))
                 for o in batch]
    else:
        raise SweepError(f"exercise must be american/european/mixed, "
                         f"got {exercise!r}")
    return batch


def _modeled_estimate(kernel: str, precision: str, steps: int) -> dict:
    """The calibrated device model's view of one configuration.

    FPGA kernels map onto the paper's DE4 operating points, the
    software reference onto the Xeon model — the same models the E2/E9
    experiments report, so the frontier's energy axis matches the
    paper's tables.
    """
    from ..core.perf_model import (
        kernel_a_estimate,
        kernel_b_estimate,
        reference_estimate,
    )
    from ..devices import cpu_compute_model, fpga_compute_model

    if kernel == "iv_a":
        estimate = kernel_a_estimate(
            fpga_compute_model("iv_a", precision=precision), steps)
    elif kernel == "iv_b":
        estimate = kernel_b_estimate(
            fpga_compute_model("iv_b", precision=precision), steps)
    else:
        estimate = reference_estimate(cpu_compute_model(precision), steps)
    return {
        "options_per_second": float(estimate.options_per_second),
        "options_per_joule": float(estimate.options_per_joule),
        "power_w": float(estimate.power_w),
    }


def _digest_result(result) -> str:
    """Bitwise digest of a cell's numeric payload (prices + greeks)."""
    digest = hashlib.blake2b(digest_size=8)
    digest.update(np.asarray(result.prices, dtype=np.float64).tobytes())
    for column in ("delta", "gamma", "theta", "vega", "rho"):
        value = getattr(result, column, None)
        if value is not None:
            digest.update(np.asarray(value, dtype=np.float64).tobytes())
    return digest.hexdigest()


class SweepRunner:
    """Execute (or resume) one :class:`SweepSpec` grid into a store.

    :param spec: the grid to run.
    :param store: a :class:`RunStore` or a path to one.
    :param service_config: base :class:`~repro.service.ServiceConfig`
        for the shared services; per-group ``faults``/``workers`` are
        overlaid from each cell's condition.
    :param tracer: optional :class:`repro.obs.Tracer`; each pass
        records a ``sweep.run`` root span with one ``cell`` child per
        executed condition.
    :param clock: timestamp source for the volatile ``meta`` envelope
        (injectable for tests; never part of the canonical rows).
    """

    def __init__(self, spec: SweepSpec, store, service_config=None,
                 tracer=None, clock=time.time):
        from ..service import ServiceConfig

        self.spec = spec
        self.store = store if isinstance(store, RunStore) else RunStore(store)
        self.service_config = service_config or ServiceConfig()
        self.tracer = tracer
        self._clock = clock
        self._services: dict = {}

    # -- service pool ----------------------------------------------------

    def _service_for(self, condition: dict):
        from ..engine.faults import FaultPlan
        from ..service import PricingService

        key = (condition.get("fault_seed"), condition.get("workers"))
        service = self._services.get(key)
        if service is None:
            fault_seed, workers = key
            config = self.service_config
            if fault_seed is not None:
                config = dc_replace(config, faults=FaultPlan.random(
                    fault_seed, max(condition["n_options"], 64)))
            if workers is not None:
                if config.engine_config is not None:
                    config = dc_replace(
                        config,
                        engine_config=dc_replace(config.engine_config,
                                                 workers=workers))
                else:
                    config = dc_replace(config, workers=workers)
            service = PricingService(config, tracer=self.tracer)
            self._services[key] = service
        return service

    def _close_services(self) -> None:
        while self._services:
            _key, service = self._services.popitem()
            service.close()

    # -- execution -------------------------------------------------------

    def _execute(self, condition: dict) -> "tuple[dict, dict]":
        """Price one cell; returns ``(result fields, meta fields)``."""
        batch = _cell_options(condition)
        service = self._service_for(condition)
        request = PricingRequest(
            options=batch,
            steps=condition["steps"],
            kernel=condition["kernel"],
            precision=condition["precision"],
            family=condition["family"],
            task=condition["task"],
            strict=False,
            backend=condition["backend"],
            bump_vol=condition.get("bump_vol", 1e-3),
            bump_rate=condition.get("bump_rate", 1e-4),
        )
        reference_request = PricingRequest(
            options=batch,
            steps=condition["reference_steps"] or condition["steps"],
            kernel="reference",
            precision="double",
            family=condition["family"],
            task="price",
            strict=False,
            backend="numpy",
        )
        future = service.submit(request)
        reference_future = service.submit(reference_request)
        result = future.result()
        reference = reference_future.result()

        prices = np.asarray(result.prices, dtype=np.float64)
        reference_prices = np.asarray(reference.prices, dtype=np.float64)
        mask = np.isfinite(prices) & np.isfinite(reference_prices)
        if mask.any():
            errors = prices[mask] - reference_prices[mask]
            rmse = float(np.sqrt(np.mean(errors * errors)))
            max_abs_err = float(np.max(np.abs(errors)))
        else:
            rmse = float("nan")
            max_abs_err = float("nan")

        failures = [
            dict(record.as_dict(),
                 code=(wire_error(record.exception)[0]
                       if record.exception is not None else "engine_error"))
            for record in (result.failures or ())
        ]
        fields = {
            "options": len(batch),
            "rmse": rmse,
            "max_abs_err": max_abs_err,
            "prices_blake2b": _digest_result(result),
            "failures": failures,
            "modeled": _modeled_estimate(condition["kernel"],
                                         condition["precision"],
                                         condition["steps"]),
        }
        meta = {
            "cache_hit": bool(result.cache_hit),
            "reference_cache_hit": bool(reference.cache_hit),
            "batch_options": int(result.batch_options),
        }
        return fields, meta

    def _host_meta(self) -> dict:
        from ..bench.gate import host_info

        return host_info()

    def run(self, limit: "int | None" = None) -> SweepStats:
        """Run every not-yet-terminal cell (at most ``limit`` of them).

        Returns the pass's :class:`SweepStats`.  Safe to call on a
        completed store: it appends nothing and executes nothing — a
        finished grid re-runs as a no-op.
        """
        conditions = self.spec.conditions()
        if not conditions:
            raise SweepError(
                f"spec {self.spec.name!r} has no cells after constraint "
                f"pruning ({self.spec.pruned_count()} pruned)")
        self.store.check_spec(self.spec)
        fingerprint = self.spec.fingerprint()
        latest = self.store.latest()

        unregistered = [c for c in conditions if c["cell"] not in latest]
        self.store.append_all(
            SweepRow(cell=c["cell"], status="pending", spec=fingerprint,
                     condition={k: v for k, v in c.items() if k != "cell"})
            for c in unregistered)

        terminal = {cell for cell, row in latest.items() if row.terminal}
        to_run = [c for c in conditions if c["cell"] not in terminal]
        if limit is not None:
            to_run = to_run[:max(int(limit), 0)]

        registry = get_registry()
        registry.counter(obs_keys.SWEEP_CELLS_TOTAL).inc(len(conditions))
        registry.counter(obs_keys.SWEEP_PRUNED_TOTAL).inc(
            self.spec.pruned_count())
        registry.counter(obs_keys.SWEEP_SKIPPED_TOTAL).inc(len(terminal))
        cell_seconds = registry.histogram(obs_keys.SWEEP_CELL_SECONDS)

        run_span = None
        if self.tracer is not None:
            run_span = self.tracer.start_span(
                f"sweep.run[{self.spec.name}]", "sweep",
                spec=fingerprint, cells=len(conditions),
                resumed_over=len(terminal))

        executed = done = failed = options = 0
        wall_total = 0.0
        try:
            for condition in to_run:
                cell = condition["cell"]
                bare = {k: v for k, v in condition.items() if k != "cell"}
                started_at = self._clock()
                self.store.append(SweepRow(
                    cell=cell, status="running", spec=fingerprint,
                    condition=bare, meta={"started_at": started_at}))
                cell_span = (run_span.child(f"cell[{cell}]", "cell")
                             if run_span is not None else None)
                wall_start = time.perf_counter()
                try:
                    fields, run_meta = self._execute(condition)
                except Exception as exc:  # typed per-cell failure scoping
                    wall = time.perf_counter() - wall_start
                    code, _status = wire_error(exc)
                    failed += 1
                    self.store.append(SweepRow(
                        cell=cell, status="failed", spec=fingerprint,
                        condition=bare,
                        error={"code": code, "message": str(exc)},
                        meta={"started_at": started_at,
                              "finished_at": self._clock(),
                              "wall_s": wall, "host": self._host_meta()}))
                    registry.counter(obs_keys.SWEEP_FAILED_TOTAL).inc()
                else:
                    wall = time.perf_counter() - wall_start
                    done += 1
                    options += fields["options"]
                    self.store.append(SweepRow(
                        cell=cell, status="done", spec=fingerprint,
                        condition=bare, result=fields,
                        meta=dict(run_meta, started_at=started_at,
                                  finished_at=self._clock(),
                                  wall_s=wall, host=self._host_meta())))
                    registry.counter(obs_keys.SWEEP_DONE_TOTAL).inc()
                    registry.counter(obs_keys.SWEEP_OPTIONS_TOTAL).inc(
                        fields["options"])
                executed += 1
                wall_total += wall
                cell_seconds.observe(wall)
                registry.counter(obs_keys.SWEEP_EXECUTED_TOTAL).inc()
                if cell_span is not None:
                    cell_span.set(wall_s=wall).end()
        finally:
            if run_span is not None:
                run_span.set(executed=executed, done=done,
                             failed=failed).end()
            self._close_services()

        return SweepStats(
            cells=len(conditions),
            pruned=self.spec.pruned_count(),
            executed=executed,
            done=done,
            failed=failed,
            skipped=len(terminal),
            options=options,
            mean_cell_s=(wall_total / executed if executed else 0.0),
        )

    def status(self) -> "dict[str, int]":
        """Latest-status histogram of the store (see ``RunStore.counts``)."""
        return self.store.counts()
