"""Resumable scenario sweeps: declarative grids over the pricing service.

The experiment layer of the repo.  A :class:`SweepSpec` declares the
independent variables of a study (named axes crossed full-factorial,
invalid cells pruned by named constraints); a :class:`SweepRunner`
executes the grid as traffic through the shared
:class:`~repro.service.PricingService`, committing every condition to
an append-only :class:`RunStore` as it completes; a killed run resumes
exactly the cells that never reached a terminal state, and the
resulting store is bitwise identical to an uninterrupted run
(:meth:`RunStore.fingerprint` is the contract).  Frontier reports
(:func:`frontier_report`) are computed from the store alone — no
re-execution.

CLI: ``repro sweep run | resume | status | report``.  Wire schemas:
``repro-sweep-spec/v1``, ``repro-sweep-row/v1``,
``repro-sweep-frontier/v1``, stats ``repro-sweep-stats/v8`` — see
``docs/sweeps.md``.
"""

from .frontier import FRONTIER_SCHEMA, frontier_report, render_frontier
from .runner import SweepRunner, SweepStats
from .spec import (
    AXIS_NAMES,
    CONSTRAINTS,
    DEFAULT_CONSTRAINTS,
    SPEC_SCHEMA,
    SweepSpec,
    cell_id,
    decode_value,
    encode_value,
)
from .store import ROW_SCHEMA, ROW_STATUSES, TERMINAL_STATUSES, RunStore, SweepRow
from .studies import BUILTIN_SPECS, builtin_spec, steps_precision_spec

__all__ = [
    "AXIS_NAMES",
    "BUILTIN_SPECS",
    "CONSTRAINTS",
    "DEFAULT_CONSTRAINTS",
    "FRONTIER_SCHEMA",
    "ROW_SCHEMA",
    "ROW_STATUSES",
    "SPEC_SCHEMA",
    "TERMINAL_STATUSES",
    "RunStore",
    "SweepRunner",
    "SweepSpec",
    "SweepStats",
    "SweepRow",
    "builtin_spec",
    "cell_id",
    "decode_value",
    "encode_value",
    "frontier_report",
    "render_frontier",
    "steps_precision_spec",
]
