"""The persistent, append-only run store behind every sweep.

One JSON-lines file holds the full history of a grid: every state
transition of every condition is one appended `repro-sweep-row/v1`
row — ``pending`` when the grid is registered, ``running`` when a
cell starts, ``done``/``failed`` when it commits.  The *latest* row
per cell wins; nothing is ever rewritten in place, so a crash at any
byte leaves at worst one truncated final line, which ``load`` drops
(it is re-appended on resume).  ``fsync`` after every append makes a
committed row durable before the next cell starts.

Determinism contract
--------------------

A killed-and-resumed sweep must end bitwise identical to an
uninterrupted run.  Rows therefore split into two parts:

* the **canonical row** — cell id, status, spec fingerprint, the
  condition, the result fields (all floats ``float.hex``) and the
  typed error of a failed cell.  These are pure functions of the spec
  and are what :meth:`RunStore.fingerprint` digests; the resume tests
  and the ``sweep-smoke`` CI job assert fingerprint equality.
* the ``meta`` envelope — timestamps, host info, measured wall
  seconds, cache hits.  Informational, exactly like the ``stats``
  block of the result wire form: two runs of the same grid agree on
  every canonical row and (necessarily) disagree on ``meta``.

Failed cells reuse the serving tier's typed error contract: the row
stores the :data:`repro.errors.WIRE_ERRORS` code plus message, and
:meth:`SweepRow.error_exception` rebuilds the typed exception via
:func:`repro.errors.error_from_wire`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from ..errors import SweepError, error_from_wire
from .spec import SweepSpec, decode_value, encode_value

__all__ = [
    "ROW_SCHEMA",
    "ROW_STATUSES",
    "TERMINAL_STATUSES",
    "RunStore",
    "SweepRow",
]

#: Schema tag of every run-store row (see docs/sweeps.md).
ROW_SCHEMA = "repro-sweep-row/v1"

#: The row life cycle, in order.
ROW_STATUSES = ("pending", "running", "done", "failed")

#: Statuses that end a cell — resume never re-executes these.
TERMINAL_STATUSES = ("done", "failed")


@dataclass(frozen=True)
class SweepRow:
    """One state transition of one grid condition.

    :param cell: the condition's stable id (see ``SweepSpec``).
    :param status: one of :data:`ROW_STATUSES`.
    :param spec: the owning spec's ``fingerprint()``.
    :param condition: the merged axis/base values of the cell.
    :param result: deterministic result fields of a ``done`` cell
        (floats carried bitwise on the wire).
    :param error: ``{"code": wire code, "message": str}`` of a
        ``failed`` cell — codes from :data:`repro.errors.WIRE_ERRORS`.
    :param meta: volatile envelope (timestamps, host, measured wall
        seconds); excluded from the canonical form.
    """

    cell: str
    status: str
    spec: str
    condition: "dict"
    result: "dict | None" = None
    error: "dict | None" = None
    meta: "dict | None" = None

    def __post_init__(self):
        if self.status not in ROW_STATUSES:
            raise SweepError(
                f"row status must be one of {ROW_STATUSES}, "
                f"got {self.status!r}")
        if self.status == "failed" and not (
                isinstance(self.error, Mapping) and "code" in self.error):
            raise SweepError(
                "a failed row needs an error {'code': ..., 'message': ...}")
        if self.status != "failed" and self.error is not None:
            raise SweepError(f"only failed rows carry an error, "
                             f"got one on status {self.status!r}")

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def error_exception(self):
        """The typed exception of a failed cell (``None`` otherwise)."""
        if self.error is None:
            return None
        return error_from_wire(self.error.get("code", "bad_request"),
                               self.error.get("message", ""))

    # -- wire form (`repro-sweep-row/v1`) --------------------------------

    def to_dict(self) -> dict:
        """JSON-ready wire form, tagged :data:`ROW_SCHEMA`."""
        data = {
            "schema": ROW_SCHEMA,
            "cell": self.cell,
            "status": self.status,
            "spec": self.spec,
            "condition": {name: encode_value(value)
                          for name, value in self.condition.items()},
        }
        if self.result is not None:
            data["result"] = _encode_tree(self.result)
        if self.error is not None:
            data["error"] = {"code": self.error["code"],
                             "message": str(self.error.get("message", ""))}
        if self.meta is not None:
            data["meta"] = _encode_tree(self.meta)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepRow":
        """Rebuild a row from its wire form (bitwise for floats)."""
        if not isinstance(data, Mapping):
            raise SweepError(f"sweep row must be a mapping, "
                             f"got {type(data).__name__}")
        schema = data.get("schema")
        if schema != ROW_SCHEMA:
            raise SweepError(
                f"unsupported sweep-row schema {schema!r} "
                f"(this build speaks {ROW_SCHEMA!r})")
        try:
            return cls(
                cell=data["cell"],
                status=data["status"],
                spec=data["spec"],
                condition={name: decode_value(value)
                           for name, value in data["condition"].items()},
                result=(_decode_tree(data["result"])
                        if "result" in data else None),
                error=(dict(data["error"]) if "error" in data else None),
                meta=(_decode_tree(data["meta"])
                      if "meta" in data else None),
            )
        except SweepError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise SweepError(f"malformed sweep row: {exc}") from exc

    def canonical_dict(self) -> dict:
        """The deterministic projection the resume contract is over."""
        data = self.to_dict()
        data.pop("meta", None)
        return data


def _encode_tree(value):
    """Recursive :func:`encode_value` over dicts/lists."""
    if isinstance(value, Mapping):
        return {str(k): _encode_tree(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_tree(v) for v in value]
    return encode_value(value)


def _decode_tree(value):
    if isinstance(value, Mapping):
        if set(value) == {"float.hex"}:
            return decode_value(value)
        return {k: _decode_tree(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_tree(v) for v in value]
    return decode_value(value)


class RunStore:
    """Append-only JSON-lines persistence for one sweep grid.

    The file is the single source of truth: the store object holds no
    state beyond the path, so any number of processes may *read* it
    concurrently and a crashed writer loses at most its unflushed
    final line.
    """

    def __init__(self, path: "str | Path"):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing ---------------------------------------------------------

    def _repair_tail(self) -> None:
        """Drop a crash-truncated final line before the next append.

        Without this, appending after a mid-write crash would weld the
        new row onto the partial line, turning recoverable tail damage
        into mid-file corruption that :meth:`rows` must refuse.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data:
            return
        tail_start = data.rfind(b"\n", 0, len(data) - 1) + 1
        tail = data[tail_start:]
        try:
            json.loads(tail.decode("utf-8"))
            decodable = True
        except (json.JSONDecodeError, UnicodeDecodeError):
            decodable = False
        if decodable and tail.endswith(b"\n"):
            return
        with open(self.path, "r+b") as handle:
            if decodable:  # rows() accepts it — just finish the line
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            else:
                handle.truncate(tail_start)
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, row: SweepRow) -> None:
        """Durably append one row (atomic: one fsynced line)."""
        line = json.dumps(row.to_dict(), sort_keys=True,
                          separators=(",", ":")) + "\n"
        self._repair_tail()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def append_all(self, rows: Iterable[SweepRow]) -> None:
        """Append many rows with a single flush/fsync at the end."""
        payload = "".join(
            json.dumps(row.to_dict(), sort_keys=True,
                       separators=(",", ":")) + "\n"
            for row in rows)
        if not payload:
            return
        self._repair_tail()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())

    # -- reading ---------------------------------------------------------

    def rows(self) -> "list[SweepRow]":
        """Every row, in append order.

        A truncated *final* line (the crash signature of an append-only
        writer) is dropped; an undecodable line anywhere else is
        corruption and raises :class:`SweepError`.
        """
        if not self.path.exists():
            return []
        lines = self.path.read_text(encoding="utf-8").splitlines()
        rows: "list[SweepRow]" = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # crash-truncated tail; resume re-runs the cell
                raise SweepError(
                    f"{self.path}: undecodable row at line {index + 1} "
                    f"(mid-file corruption, not a truncated tail)")
            rows.append(SweepRow.from_dict(payload))
        return rows

    def latest(self) -> "dict[str, SweepRow]":
        """Latest row per cell (insertion order = first-seen order)."""
        latest: "dict[str, SweepRow]" = {}
        for row in self.rows():
            latest[row.cell] = row
        return latest

    def terminal_cells(self) -> "set[str]":
        """Cells whose latest status is done/failed (never re-run)."""
        return {cell for cell, row in self.latest().items() if row.terminal}

    def counts(self) -> "dict[str, int]":
        """Latest-status histogram over :data:`ROW_STATUSES`."""
        counts = {status: 0 for status in ROW_STATUSES}
        for row in self.latest().values():
            counts[row.status] += 1
        return counts

    def spec_fingerprint(self) -> "str | None":
        """The spec fingerprint stamped on the store (``None`` if empty)."""
        for row in self.rows():
            return row.spec
        return None

    def check_spec(self, spec: SweepSpec) -> None:
        """Refuse to mix a store with a different grid."""
        stamped = self.spec_fingerprint()
        if stamped is not None and stamped != spec.fingerprint():
            raise SweepError(
                f"{self.path} belongs to spec {stamped}, not "
                f"{spec.fingerprint()} ({spec.name!r}); refusing to mix "
                f"grids in one store")

    def fingerprint(self) -> str:
        """Digest of the canonical terminal rows, sorted by cell id.

        This is the bitwise-resume contract: an interrupted-and-resumed
        run and an uninterrupted run of the same spec produce equal
        fingerprints (asserted by ``tests/sweep`` and the
        ``sweep-smoke`` CI job).
        """
        digest = hashlib.blake2b(digest_size=16)
        latest = self.latest()
        for cell in sorted(latest):
            row = latest[cell]
            if not row.terminal:
                continue
            canonical = json.dumps(row.canonical_dict(), sort_keys=True,
                                   separators=(",", ":"))
            digest.update(canonical.encode())
            digest.update(b"\n")
        return digest.hexdigest()
