"""`repro.api` — the one front door for pricing option batches.

The library grew three pricing entry points with three calling
conventions: the software reference
(:func:`repro.finance.binomial.price_binomial_batch`), the modeled
accelerators (:meth:`repro.core.accelerator.BinomialAccelerator.price_batch`)
and the host engine (:meth:`repro.engine.PricingEngine.price`).
:func:`price` routes one keyword-only signature to all of them and
returns one result shape, :class:`PriceResult`.

Routing:

* ``device=None`` (default) runs the host :class:`PricingEngine` with
  the requested ``kernel`` (``"reference"`` if not given) — real
  wall-clock throughput, fault tolerance, optional tracing;
* ``device="fpga" | "gpu" | "cpu"`` builds the matching
  :class:`BinomialAccelerator` — the paper's Table II configurations
  with modeled time and energy; a ready-made accelerator instance is
  accepted too and is *not* closed for you.

Migration from the older entry points:

===============================================  =============================================
Before                                           After
===============================================  =============================================
``price_binomial_batch(opts, steps=N)``          ``price(opts, steps=N).prices``
``price_binomial_batch(..., workers=4)``         ``price(opts, steps=N, workers=4).prices``
``acc = BinomialAccelerator("fpga", "iv_b")``    ``price(opts, steps=N, device="fpga",``
``acc.price_batch(opts)``                        ``      kernel="iv_b").modeled``
``PricingEngine(kernel="iv_b").price(opts, N)``  ``price(opts, steps=N, kernel="iv_b").prices``
``PricingEngine(...).run(opts, N)``              ``price(opts, steps=N, kernel="iv_b",``
                                                 ``      strict=False)`` (NaN + ``failures``)
===============================================  =============================================

Example::

    import repro

    batch = repro.generate_batch(n_options=2000)
    result = repro.price(batch.options, steps=1024, kernel="iv_b",
                         workers=4)
    print(result.prices[:3], result.stats.options_per_second)

    modeled = repro.price(batch.options, steps=1024, device="fpga")
    print(modeled.modeled.energy_joules)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from .core.accelerator import AcceleratorResult, BinomialAccelerator
from .core.faithful_math import EXACT_DOUBLE, EXACT_SINGLE
from .devices.base import Precision
from .engine import EngineConfig, PricingEngine
from .engine.reliability import FailureRecord
from .engine.stats import EngineStats
from .errors import ReproError
from .finance.lattice import LatticeFamily
from .finance.options import Option

__all__ = ["GreeksResult", "PriceResult", "greeks", "price"]

_DEVICES = ("fpga", "gpu", "cpu")


@dataclass(frozen=True)
class PriceResult:
    """What :func:`price` returns, whatever the route.

    :param prices: root option values in input order (NaN for options
        quarantined under ``strict=False``).
    :param route: ``"engine"`` or ``"accelerator"``.
    :param stats: the engine run's measured statistics (``None`` on the
        accelerator route, whose engine is internal to the model).
    :param failures: per-option failure records (engine route with
        ``strict=False``; empty otherwise).
    :param modeled: the accelerator's modeled time/energy result
        (``None`` on the engine route).
    """

    prices: np.ndarray
    route: str
    stats: "EngineStats | None" = None
    failures: "tuple[FailureRecord, ...]" = field(default=())
    modeled: "AcceleratorResult | None" = None

    def __len__(self) -> int:
        return len(self.prices)

    @property
    def options_per_second(self) -> "float | None":
        """Throughput: measured (engine) or modeled (accelerator)."""
        if self.stats is not None:
            return self.stats.options_per_second
        if self.modeled is not None:
            return self.modeled.options_per_second
        return None


@dataclass(frozen=True)
class GreeksResult:
    """What :func:`greeks` returns: one array per sensitivity.

    ``prices``/``delta``/``gamma``/``theta`` come from the *same*
    engine pricing pass (tree-level capture); ``vega``/``rho`` from
    the bump passes scheduled alongside it.  All arrays are in input
    order; options that failed under ``strict=False`` carry NaN in
    the affected columns and a :class:`FailureRecord` naming the pass.
    """

    prices: np.ndarray
    delta: np.ndarray
    gamma: np.ndarray
    theta: np.ndarray
    vega: np.ndarray
    rho: np.ndarray
    stats: "EngineStats | None" = None
    failures: "tuple[FailureRecord, ...]" = field(default=())

    def __len__(self) -> int:
        return len(self.prices)

    @property
    def options_per_second(self) -> "float | None":
        """Tree-pricing throughput of the run (5 pricings per option)."""
        if self.stats is None:
            return None
        return self.stats.options_per_second


def _engine_profile(precision: str):
    Precision.check(precision)
    return EXACT_SINGLE if precision == Precision.SINGLE else EXACT_DOUBLE


def price(
    options: Sequence[Option],
    *,
    steps: "int | Sequence[int]" = 1024,
    device: "str | BinomialAccelerator | None" = None,
    kernel: "str | None" = None,
    config: "EngineConfig | None" = None,
    workers: "int | None" = None,
    family: LatticeFamily = LatticeFamily.CRR,
    precision: str = Precision.DOUBLE,
    tracer=None,
    strict: bool = True,
) -> PriceResult:
    """Price a batch of options through the configured route.

    :param options: the contracts to price.
    :param steps: tree depth — one value, or one per option (the
        engine route regroups heterogeneous streams; the accelerator
        route requires a single depth, like the hardware it models).
    :param device: ``None`` for the host engine, a platform name
        (``"fpga"``/``"gpu"``/``"cpu"``) for a modeled accelerator, or
        an existing :class:`BinomialAccelerator` to reuse (caller keeps
        ownership — it is not closed).
    :param kernel: ``"iv_a"``, ``"iv_b"`` or ``"reference"``; defaults
        to ``"reference"`` on the engine/cpu routes and ``"iv_b"`` on
        fpga/gpu.
    :param config: :class:`EngineConfig` for the pricing engine
        (either route); mutually exclusive with ``workers``.
    :param workers: shorthand for ``EngineConfig(workers=...)``.
    :param family: lattice parameterisation.
    :param precision: ``"double"`` or ``"single"``.
    :param tracer: optional :class:`repro.obs.trace.Tracer` observing
        the engine run (``None`` = tracing disabled).
    :param strict: engine route only — ``True`` re-raises the first
        pricing failure (the historical ``price_binomial_batch``
        contract); ``False`` returns NaN for quarantined options plus
        their :class:`FailureRecord` in :attr:`PriceResult.failures`.
    """
    options = list(options)
    if config is not None and workers is not None:
        raise ReproError("pass either config or workers, not both")
    if workers is not None:
        config = EngineConfig(workers=workers)

    if device is None:
        return _price_engine(options, steps, kernel or "reference", config,
                             family, precision, tracer, strict)
    return _price_accelerator(options, steps, device, kernel, config,
                              family, precision, tracer)


def _price_engine(options, steps, kernel, config, family, precision,
                  tracer, strict) -> PriceResult:
    if not options:
        return PriceResult(prices=np.empty(0, dtype=np.float64),
                           route="engine")
    with PricingEngine(kernel=kernel, profile=_engine_profile(precision),
                       family=family, config=config,
                       tracer=tracer) as engine:
        result = engine.run(options, steps)
        if strict and result.failures:
            # the historical price_binomial_batch contract: re-raise
            # the first failure with its original exception type
            first = result.failures[0]
            if first.exception is not None:
                raise first.exception
            raise ReproError(
                f"option {first.index} failed after {first.attempts} "
                f"attempts: {first.error}: {first.message}")
        return PriceResult(prices=result.prices, route="engine",
                           stats=result.stats, failures=result.failures)


def greeks(
    options: Sequence[Option],
    *,
    steps: "int | Sequence[int]" = 512,
    kernel: str = "iv_b",
    config: "EngineConfig | None" = None,
    workers: "int | None" = None,
    family: LatticeFamily = LatticeFamily.CRR,
    precision: str = Precision.DOUBLE,
    bump_vol: float = 1e-3,
    bump_rate: float = 1e-4,
    tracer=None,
    strict: bool = True,
) -> GreeksResult:
    """Batch price + delta/gamma/theta/vega/rho through the engine.

    Delta, gamma and theta are read off tree levels 0..2 of the *same*
    engine pricing pass that produces the prices (no re-pricing — the
    Hull lattice trick, batched); vega and rho are central finite
    differences over four bump-and-reprice passes scheduled as sibling
    chunk groups of the same run, so the whole workload inherits the
    engine's chunking, worker fan-out, retry/quarantine and
    span/metrics instrumentation.  The scalar counterpart (and test
    oracle) is :func:`repro.finance.greeks.lattice_greeks`.

    :param steps: tree depth (>= 3), one value or one per option.
    :param kernel: ``"iv_a"``, ``"iv_b"`` (default) or ``"reference"``.
    :param config: :class:`EngineConfig`; mutually exclusive with
        ``workers``.
    :param workers: shorthand for ``EngineConfig(workers=...)``.
    :param family: lattice parameterisation (kernel IV.B requires CRR).
    :param precision: ``"double"`` or ``"single"``.
    :param bump_vol: absolute volatility bump for the vega difference.
    :param bump_rate: absolute rate bump for the rho difference.
    :param tracer: optional :class:`repro.obs.trace.Tracer`.
    :param strict: ``True`` re-raises the first pricing failure;
        ``False`` returns NaN in the affected columns plus
        :class:`FailureRecord` entries naming the failing pass.
    """
    options = list(options)
    if config is not None and workers is not None:
        raise ReproError("pass either config or workers, not both")
    if workers is not None:
        config = EngineConfig(workers=workers)
    if not options:
        empty = np.empty(0, dtype=np.float64)
        return GreeksResult(prices=empty, delta=empty.copy(),
                            gamma=empty.copy(), theta=empty.copy(),
                            vega=empty.copy(), rho=empty.copy())
    with PricingEngine(kernel=kernel, profile=_engine_profile(precision),
                       family=family, config=config,
                       tracer=tracer) as engine:
        result = engine.run_greeks(options, steps, bump_vol=bump_vol,
                                   bump_rate=bump_rate)
    if strict and result.failures:
        first = result.failures[0]
        if first.exception is not None:
            raise first.exception
        raise ReproError(
            f"option {first.index} failed after {first.attempts} "
            f"attempts: {first.error}: {first.message}")
    return GreeksResult(
        prices=result.prices, delta=result.delta, gamma=result.gamma,
        theta=result.theta, vega=result.vega, rho=result.rho,
        stats=result.stats, failures=result.failures,
    )


def _price_accelerator(options, steps, device, kernel, config, family,
                       precision, tracer) -> PriceResult:
    if np.ndim(steps) != 0:
        raise ReproError(
            "accelerator routes price one tree depth per batch; pass a "
            "single steps value (or split the stream per depth)")
    if isinstance(device, BinomialAccelerator):
        accelerator, owned = device, False
    elif device in _DEVICES:
        if kernel is None:
            kernel = "reference" if device == "cpu" else "iv_b"
        accelerator, owned = BinomialAccelerator(
            platform=device, kernel=kernel, precision=precision,
            steps=int(steps), family=family, engine_config=config,
            tracer=tracer,
        ), True
    else:
        raise ReproError(
            f"device must be one of {_DEVICES}, a BinomialAccelerator, or "
            f"None for the host engine; got {device!r}")
    try:
        modeled = accelerator.price_batch(options)
    finally:
        if owned:
            accelerator.close()
    return PriceResult(prices=modeled.prices, route="accelerator",
                       modeled=modeled)
