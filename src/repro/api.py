"""`repro.api` — the one front door for pricing option batches.

The library grew three pricing entry points with three calling
conventions: the software reference (``price_binomial_batch``), the
modeled accelerators (``BinomialAccelerator.price_batch``) and the
host engine (:meth:`repro.engine.PricingEngine.price`).  :func:`price`
routes one keyword-only signature to all of them and returns one
result shape, :class:`PriceResult`.  The two historical batch entry
points were removed in repro 2.0 — only raising migration stubs
remain; the table below is the map.

Every pricing call — the :func:`price`/:func:`greeks` façade, the
in-process :class:`repro.service.PricingService`, the CLI benches —
is internally expressed as one canonical request object,
:class:`PricingRequest`, executed by :func:`run_request` on a
:class:`~repro.engine.PricingEngine`.  The library call and the
service call are therefore the *same* request schema, and all results
derive from one base, :class:`BatchResult` (``route``, ``stats``,
``failures``, ``options_per_second``).

Routing:

* ``device=None`` (default) runs the host :class:`PricingEngine` with
  the requested ``kernel`` (``"reference"`` if not given) — real
  wall-clock throughput, fault tolerance, optional tracing.  With the
  default ``config``/``workers``/``tracer``/``engine`` the engine is
  *shared and reused* across calls (one per ``(kernel, precision,
  family)``) instead of being rebuilt per call; pass ``engine=`` to
  manage your own.  :func:`close_shared_engines` runs automatically
  at interpreter exit (and may be called earlier, idempotently);
* ``device="fpga" | "gpu" | "cpu"`` builds the matching
  :class:`BinomialAccelerator` — the paper's Table II configurations
  with modeled time and energy; a ready-made accelerator instance is
  accepted too and is *not* closed for you.

Migration from the older entry points:

===============================================  =============================================
Before                                           After
===============================================  =============================================
``price_binomial_batch(opts, steps=N)``          ``price(opts, steps=N).prices``
``price_binomial_batch(..., workers=4)``         ``price(opts, steps=N, workers=4).prices``
(removed in repro 2.0)
``acc = BinomialAccelerator("fpga", "iv_b")``    ``price(opts, steps=N, device="fpga",``
``acc.price_batch(opts)``                        ``      kernel="iv_b").modeled``
(removed in repro 2.0)
``PricingEngine(kernel="iv_b").price(opts, N)``  ``price(opts, steps=N, kernel="iv_b").prices``
``PricingEngine(...).run(opts, N)``              ``price(opts, steps=N, kernel="iv_b",``
                                                 ``      strict=False)`` (NaN + ``failures``)
``run_request(engine,``                          the canonical request path the façade,
``  PricingRequest(options=..., steps=...))``    service and CLI all share (raw engine result)
===============================================  =============================================

Unified result shape: :class:`PriceResult`, :class:`GreeksResult` and
the service's :class:`ServiceResult` all subclass :class:`BatchResult`
and share ``route``/``stats``/``failures``/``options_per_second`` and
``len(result)``; only the payload columns differ (``prices`` alone,
the five greeks columns, or either plus service metadata).

Example::

    import repro

    batch = repro.generate_batch(n_options=2000)
    result = repro.price(batch.options, steps=1024, kernel="iv_b",
                         workers=4)
    print(result.prices[:3], result.stats.options_per_second)

    modeled = repro.price(batch.options, steps=1024, device="fpga")
    print(modeled.modeled.energy_joules)
"""

from __future__ import annotations

import atexit
import threading
from dataclasses import (dataclass, field, fields as dc_fields,
                         replace as dc_replace)
from typing import Optional, Sequence

import numpy as np

from .backends import BACKENDS
from .core.accelerator import AcceleratorResult, BinomialAccelerator
from .core.faithful_math import EXACT_DOUBLE, EXACT_SINGLE
from .devices.base import Precision
from .engine import EngineConfig, PricingEngine
from .engine.reliability import FailureRecord
from .engine.scheduler import KERNELS
from .engine.stats import EngineStats
from .errors import ReproError
from .finance.lattice import LatticeFamily
from .finance.options import Option

__all__ = [
    "BatchResult",
    "GREEKS_COLUMNS",
    "GreeksResult",
    "PRIORITIES",
    "PriceResult",
    "PricingRequest",
    "ServiceResult",
    "WIRE_REQUEST_SCHEMA",
    "WIRE_RESULT_SCHEMA",
    "close_shared_engines",
    "greeks",
    "price",
    "run_request",
]

_DEVICES = ("fpga", "gpu", "cpu")

#: The five sensitivity columns a greeks-task result carries, in the
#: one canonical order every layer agrees on — result wire columns,
#: the service cache payload, the shard result transport and the
#: streaming risk aggregates all index greeks by this tuple.
GREEKS_COLUMNS = ("delta", "gamma", "theta", "vega", "rho")

#: Version tags of the wire forms produced by
#: :meth:`PricingRequest.to_dict` and :meth:`BatchResult.to_dict` —
#: the serving tier's network protocol and the contract external
#: clients code against (documented in ``docs/wire_schema.md``).
#: Float fields travel as :meth:`float.hex` strings so a request or
#: result crossing the wire round-trips *bitwise*, never through a
#: decimal representation.
WIRE_REQUEST_SCHEMA = "repro-request/v1"
WIRE_RESULT_SCHEMA = "repro-result/v1"


def _hex(value: float) -> str:
    return float(value).hex()


def _unhex(value) -> float:
    """Read a wire float: ``float.hex`` canonical, plain numbers tolerated.

    ``to_dict`` always writes hex strings; hand-written clients may
    send JSON numbers and lose only what decimal text loses.
    """
    if isinstance(value, str):
        return float.fromhex(value)
    return float(value)


_OPTION_FLOAT_FIELDS = ("spot", "strike", "rate", "volatility",
                        "maturity", "dividend_yield")


def _option_to_dict(option: Option) -> dict:
    data = {name: _hex(getattr(option, name))
            for name in _OPTION_FLOAT_FIELDS}
    data["option_type"] = option.option_type.value
    data["exercise"] = option.exercise.value
    return data


def _option_from_dict(data: dict) -> Option:
    try:
        return Option(
            option_type=data["option_type"], exercise=data["exercise"],
            **{name: _unhex(data[name]) for name in _OPTION_FLOAT_FIELDS})
    except KeyError as exc:
        raise ReproError(
            f"wire option is missing field {exc.args[0]!r}") from None


def _array_to_hex(array: "np.ndarray | None") -> "list[str] | None":
    if array is None:
        return None
    return [_hex(value) for value in np.asarray(array, dtype=np.float64)]


def _array_from_hex(values) -> "np.ndarray | None":
    if values is None:
        return None
    return np.array([_unhex(value) for value in values], dtype=np.float64)

#: Tasks a request may carry.  Narrower than the scheduler's
#: :data:`~repro.engine.scheduler.TASKS`: ``"greeks_fused"`` is an
#: internal scheduling shape the engine picks from
#: ``EngineConfig.fused_greeks``, not something callers request.
_REQUEST_TASKS = ("price", "greeks")

#: Admission bands of the serving layer, lowest first.  Under overload
#: the :class:`repro.service.PricingService` sheds the oldest entry of
#: the lowest non-empty band to admit higher-priority work.
PRIORITIES = ("normal", "high")


# ---------------------------------------------------------------------------
# the canonical request object


@dataclass(frozen=True)
class PricingRequest:
    """One pricing request — the schema every route shares.

    :func:`price` and :func:`greeks` build one internally, the
    :class:`repro.service.PricingService` accepts them directly (and
    coalesces compatible ones into engine-sized batches), and
    :func:`run_request` executes one on any
    :class:`~repro.engine.PricingEngine`.

    :param options: the contracts to price (stored as a tuple).
    :param steps: tree depth — one ``int`` for the whole request, or
        one per option.
    :param kernel: ``"iv_a"``, ``"iv_b"`` or ``"reference"``.
    :param precision: ``"double"`` or ``"single"``.
    :param family: lattice parameterisation (``LatticeFamily`` or its
        string value; kernel IV.B requires CRR).
    :param task: ``"price"`` or ``"greeks"``.
    :param strict: ``True`` re-raises the first pricing failure when
        the result is built; ``False`` returns NaN plus
        :class:`FailureRecord` entries.  Not part of the batch/cache
        identity — it only affects how *this* caller sees failures.
    :param workers: preferred engine worker count (``None`` = engine
        default).  Advisory: the service and the shared-engine path
        run on an engine they own, so this only shapes dedicated
        engines.  Not part of the batch/cache identity.
    :param backend: which kernel backend prices the request —
        ``"auto"`` (default; fastest available), ``"numpy"``,
        ``"cnative"`` or ``"numba"``.  Backends are bit-identical, so
        this is a scheduling preference, not a numerical one; it *is*
        part of the batch identity (requests coalesce per backend so
        each merged flush runs on the engine the caller asked for) but
        not of the cache identity.
    :param bump_vol: vega bump (greeks task only, must be > 0).
    :param bump_rate: rho bump (greeks task only, must be > 0).
    :param deadline_ms: wall-clock budget the caller gives the serving
        layer, in milliseconds from ``submit()``.  When it expires
        before the result is ready the request's future fails with
        :class:`~repro.errors.DeadlineExceededError`; while it is
        live it bounds the engine's per-chunk timeout for the flush
        that carries the request.  ``None`` (default) waits forever.
        A delivery knob like ``strict``: not part of the batch/cache
        identity.
    :param priority: ``"normal"`` (default) or ``"high"``.  Under
        overload the service sheds the oldest normal-priority queue
        entries to admit high-priority work before rejecting it.
        Delivery knob: not part of the batch/cache identity.

    Validation happens at construction, so a request that builds is a
    request the engine will accept — services can coalesce requests
    into shared flushes without one request's bad arguments failing
    its neighbours at run time.
    """

    options: "tuple[Option, ...]"
    steps: "int | tuple[int, ...]" = 1024
    kernel: str = "reference"
    precision: str = Precision.DOUBLE
    family: LatticeFamily = LatticeFamily.CRR
    task: str = "price"
    strict: bool = True
    workers: "int | None" = None
    backend: str = "auto"
    bump_vol: float = 1e-3
    bump_rate: float = 1e-4
    deadline_ms: "float | None" = None
    priority: str = "normal"

    def __post_init__(self):
        options = tuple(self.options)
        if not options:
            raise ReproError("PricingRequest needs at least one option")
        for option in options:
            if not isinstance(option, Option):
                raise ReproError(
                    f"options must be repro Option instances, got "
                    f"{type(option).__name__}")
        object.__setattr__(self, "options", options)

        if self.kernel not in KERNELS:
            raise ReproError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}")
        if self.task not in _REQUEST_TASKS:
            raise ReproError(
                f"task must be one of {_REQUEST_TASKS}, got {self.task!r}")
        if self.backend not in BACKENDS:
            raise ReproError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}")
        Precision.check(self.precision)
        family = self.family
        if not isinstance(family, LatticeFamily):
            try:
                family = LatticeFamily(family)
            except ValueError:
                raise ReproError(
                    f"family must be a LatticeFamily or one of "
                    f"{[member.value for member in LatticeFamily]}, "
                    f"got {self.family!r}") from None
            object.__setattr__(self, "family", family)
        if self.kernel == "iv_b" and family is not LatticeFamily.CRR:
            raise ReproError(
                "kernel IV.B bakes u*d = 1 into its device-side leaves "
                f"and supports only the CRR family, got {family.value!r}")

        if np.ndim(self.steps) == 0:
            steps: "int | tuple[int, ...]" = int(self.steps)
            flat = (steps,)
        else:
            steps = tuple(int(s) for s in self.steps)
            if len(steps) != len(options):
                raise ReproError(
                    f"per-option steps length {len(steps)} does not match "
                    f"{len(options)} options")
            flat = steps
        object.__setattr__(self, "steps", steps)
        min_steps = self.min_steps(self.kernel, self.task)
        for value in flat:
            if value < min_steps:
                raise ReproError(
                    f"task {self.task!r} on kernel {self.kernel!r} needs "
                    f"at least {min_steps} steps, got {value}")

        if self.workers is not None and int(self.workers) < 1:
            raise ReproError(f"workers must be >= 1, got {self.workers}")
        if self.deadline_ms is not None and not float(self.deadline_ms) > 0:
            raise ReproError(
                f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.priority not in PRIORITIES:
            raise ReproError(
                f"priority must be one of {PRIORITIES}, "
                f"got {self.priority!r}")
        if self.task == "greeks":
            if not self.bump_vol > 0:
                raise ReproError(
                    f"bump_vol must be > 0, got {self.bump_vol}")
            if not self.bump_rate > 0:
                raise ReproError(
                    f"bump_rate must be > 0, got {self.bump_rate}")

    @staticmethod
    def min_steps(kernel: str, task: str) -> int:
        """Smallest tree depth the engine accepts for this work."""
        if task == "greeks":
            return 3  # levels 0..2 must sit below the leaves
        return 2 if kernel in ("iv_a", "iv_b") else 1

    def __len__(self) -> int:
        return len(self.options)

    def steps_per_option(self) -> "tuple[int, ...]":
        """The depth of every option, expanded from a scalar if needed."""
        if isinstance(self.steps, tuple):
            return self.steps
        return (self.steps,) * len(self.options)

    @property
    def batch_key(self) -> tuple:
        """Coalescing compatibility key.

        Requests with equal keys may be merged into one engine flush:
        same lattice/kernel/precision/backend/task (and greeks bumps),
        with ``steps`` carried per option so heterogeneous-depth
        merges stay legal (``group_stream`` regroups them inside the
        run).  ``backend`` is included because the service keeps one
        engine per configuration and a flush runs on exactly one
        backend; ``strict`` and ``workers`` are per-caller concerns
        and deliberately excluded.
        """
        key = (self.kernel, self.precision, self.family.value,
               self.backend, self.task)
        if self.task == "greeks":
            key += (float(self.bump_vol), float(self.bump_rate))
        return key

    # -- wire form (the serving tier's request protocol) ----------------

    def to_dict(self) -> dict:
        """JSON-ready wire form, tagged :data:`WIRE_REQUEST_SCHEMA`.

        Floats travel as :meth:`float.hex` strings so
        ``PricingRequest.from_dict(request.to_dict())`` rebuilds a
        request that prices *bitwise identically* — the property the
        shard-parity acceptance test rides on.
        """
        return {
            "schema": WIRE_REQUEST_SCHEMA,
            "options": [_option_to_dict(option) for option in self.options],
            "steps": (list(self.steps) if isinstance(self.steps, tuple)
                      else int(self.steps)),
            "kernel": self.kernel,
            "precision": self.precision,
            "family": self.family.value,
            "task": self.task,
            "strict": bool(self.strict),
            "workers": None if self.workers is None else int(self.workers),
            "backend": self.backend,
            "bump_vol": _hex(self.bump_vol),
            "bump_rate": _hex(self.bump_rate),
            "deadline_ms": (None if self.deadline_ms is None
                            else _hex(self.deadline_ms)),
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PricingRequest":
        """Rebuild a request from its wire form (server side).

        Validates the schema tag, then funnels everything through the
        normal constructor — a request that deserialises is a request
        the engine will accept, exactly like a locally built one.
        Malformed payloads raise :class:`~repro.errors.ReproError`
        (wire code ``bad_request``).
        """
        if not isinstance(data, dict):
            raise ReproError(
                f"wire request must be a JSON object, got "
                f"{type(data).__name__}")
        schema = data.get("schema")
        if schema != WIRE_REQUEST_SCHEMA:
            raise ReproError(
                f"unsupported request schema {schema!r} "
                f"(this server speaks {WIRE_REQUEST_SCHEMA!r})")
        options_data = data.get("options")
        if not isinstance(options_data, (list, tuple)):
            raise ReproError("wire request needs an 'options' list")
        steps = data.get("steps", 1024)
        try:
            return cls(
                options=tuple(_option_from_dict(entry)
                              for entry in options_data),
                steps=(tuple(int(s) for s in steps)
                       if isinstance(steps, (list, tuple)) else int(steps)),
                kernel=str(data.get("kernel", "reference")),
                precision=str(data.get("precision", Precision.DOUBLE)),
                family=data.get("family", LatticeFamily.CRR),
                task=str(data.get("task", "price")),
                strict=bool(data.get("strict", True)),
                workers=(None if data.get("workers") is None
                         else int(data["workers"])),
                backend=str(data.get("backend", "auto")),
                bump_vol=_unhex(data.get("bump_vol", 1e-3)),
                bump_rate=_unhex(data.get("bump_rate", 1e-4)),
                deadline_ms=(None if data.get("deadline_ms") is None
                             else _unhex(data["deadline_ms"])),
                priority=str(data.get("priority", "normal")),
            )
        except ReproError:
            raise
        except (TypeError, ValueError) as exc:
            raise ReproError(f"malformed wire request: {exc}") from None


# ---------------------------------------------------------------------------
# the unified result shapes


@dataclass(frozen=True)
class BatchResult:
    """Common shape of every pricing result, whatever the route.

    :param route: ``"engine"``, ``"accelerator"`` or ``"service"``.
    :param stats: the engine run's measured statistics (``None`` where
        no host engine ran, e.g. the accelerator route).
    :param failures: per-option failure records (``strict=False``
        routes; empty otherwise).

    Subclasses add the payload columns; every subclass carries
    ``prices`` so ``len(result)`` and array access are uniform.
    """

    route: str = "engine"
    stats: "EngineStats | None" = None
    failures: "tuple[FailureRecord, ...]" = field(default=())

    def __len__(self) -> int:
        return len(self.prices)  # type: ignore[attr-defined]

    @property
    def options_per_second(self) -> "float | None":
        """Throughput: measured (engine) or modeled (accelerator)."""
        if self.stats is not None:
            return self.stats.options_per_second
        modeled = getattr(self, "modeled", None)
        if modeled is not None:
            return modeled.options_per_second
        return None

    # -- wire form (the serving tier's result protocol) -----------------

    #: Payload columns serialised as ``float.hex`` lists when present.
    _WIRE_COLUMNS = ("prices",) + GREEKS_COLUMNS

    def to_dict(self) -> dict:
        """JSON-ready wire form, tagged :data:`WIRE_RESULT_SCHEMA`.

        Handles every subclass via a ``type`` discriminator.  Payload
        columns travel as :meth:`float.hex` lists (bitwise-lossless);
        ``stats`` travels as :meth:`EngineStats.as_dict` (informational
        numbers, not part of the parity contract); ``failures`` as
        :meth:`FailureRecord.as_dict` with request-local indices
        intact.  :attr:`PriceResult.modeled` is *not* serialised — the
        accelerator-model route is local-only and the serving tier
        never produces it.
        """
        data: dict = {
            "schema": WIRE_RESULT_SCHEMA,
            "type": type(self).__name__,
            "route": self.route,
            "stats": None if self.stats is None else self.stats.as_dict(),
            "failures": [record.as_dict() for record in self.failures],
        }
        for column in self._WIRE_COLUMNS:
            value = getattr(self, column, None)
            if value is not None:
                data[column] = _array_to_hex(value)
        if isinstance(self, ServiceResult):
            data["cache_hit"] = bool(self.cache_hit)
            data["batch_options"] = int(self.batch_options)
            data["wait_s"] = _hex(self.wait_s)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "BatchResult":
        """Rebuild a result from its wire form (client side).

        Dispatches on the ``type`` discriminator to the matching
        subclass; arrays come back float64 and bitwise-equal to what
        the server serialised.  ``stats`` is rebuilt as an
        :class:`EngineStats` (derived rates recompute from the real
        fields); ``failures`` as :class:`FailureRecord` entries whose
        ``exception`` slot is empty — strict remote callers re-raise a
        typed reconstruction via :func:`repro.errors.error_from_wire`.
        """
        if not isinstance(data, dict):
            raise ReproError(
                f"wire result must be a JSON object, got "
                f"{type(data).__name__}")
        schema = data.get("schema")
        if schema != WIRE_RESULT_SCHEMA:
            raise ReproError(
                f"unsupported result schema {schema!r} "
                f"(this client speaks {WIRE_RESULT_SCHEMA!r})")
        type_name = data.get("type")
        klass = _WIRE_RESULT_TYPES.get(type_name)
        if klass is None:
            raise ReproError(
                f"unknown wire result type {type_name!r} "
                f"(expected one of {sorted(_WIRE_RESULT_TYPES)})")
        stats_data = data.get("stats")
        stats = None
        if stats_data is not None:
            known = {f.name for f in dc_fields(EngineStats)}
            stats = EngineStats(**{key: value
                                   for key, value in stats_data.items()
                                   if key in known})
        kwargs: dict = {
            "route": str(data.get("route", "engine")),
            "stats": stats,
            "failures": tuple(FailureRecord.from_dict(entry)
                              for entry in data.get("failures", ())),
        }
        column_fields = {f.name for f in dc_fields(klass)}
        for column in cls._WIRE_COLUMNS:
            if column in data and column in column_fields:
                kwargs[column] = _array_from_hex(data[column])
        if issubclass(klass, ServiceResult):
            kwargs["cache_hit"] = bool(data.get("cache_hit", False))
            kwargs["batch_options"] = int(data.get("batch_options", 0))
            kwargs["wait_s"] = _unhex(data.get("wait_s", 0.0))
        try:
            return klass(**kwargs)
        except (TypeError, ValueError) as exc:
            raise ReproError(f"malformed wire result: {exc}") from None


@dataclass(frozen=True)
class PriceResult(BatchResult):
    """What :func:`price` returns, whatever the route.

    :param prices: root option values in input order (NaN for options
        quarantined under ``strict=False``).
    :param modeled: the accelerator's modeled time/energy result
        (``None`` on the engine route).
    """

    prices: np.ndarray = None  # type: ignore[assignment]
    modeled: "AcceleratorResult | None" = None


@dataclass(frozen=True)
class GreeksResult(BatchResult):
    """What :func:`greeks` returns: one array per sensitivity.

    ``prices``/``delta``/``gamma``/``theta`` come from the *same*
    engine pricing pass (tree-level capture); ``vega``/``rho`` from
    the bump passes scheduled alongside it.  All arrays are in input
    order; options that failed under ``strict=False`` carry NaN in
    the affected columns and a :class:`FailureRecord` naming the pass.
    """

    prices: np.ndarray = None  # type: ignore[assignment]
    delta: np.ndarray = None  # type: ignore[assignment]
    gamma: np.ndarray = None  # type: ignore[assignment]
    theta: np.ndarray = None  # type: ignore[assignment]
    vega: np.ndarray = None  # type: ignore[assignment]
    rho: np.ndarray = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ServiceResult(BatchResult):
    """What a :class:`repro.service.PricingService` future resolves to.

    Carries the payload of the request's ``task`` (``prices`` always;
    the greeks columns only for ``task="greeks"``) plus how the
    request was served.

    :param prices: values in *request* order (the service scatters the
        coalesced batch back per request).
    :param cache_hit: the result came straight from the content-keyed
        cache (or from a computation another in-flight identical
        request already started).
    :param batch_options: size of the merged engine batch this request
        was flushed in (equals ``len(result)`` for an uncoalesced
        flush; 0 on a pure cache hit — no engine ran).
    :param wait_s: time the request spent queued + coalescing before
        its flush started (0.0 on a cache hit).
    """

    prices: np.ndarray = None  # type: ignore[assignment]
    delta: "np.ndarray | None" = None
    gamma: "np.ndarray | None" = None
    theta: "np.ndarray | None" = None
    vega: "np.ndarray | None" = None
    rho: "np.ndarray | None" = None
    cache_hit: bool = False
    batch_options: int = 0
    wait_s: float = 0.0


#: ``type`` discriminator -> result class for the wire protocol.
_WIRE_RESULT_TYPES = {
    "BatchResult": BatchResult,
    "PriceResult": PriceResult,
    "GreeksResult": GreeksResult,
    "ServiceResult": ServiceResult,
}


# ---------------------------------------------------------------------------
# request execution (shared by façade, service, CLI)


def _engine_profile(precision: str):
    Precision.check(precision)
    return EXACT_SINGLE if precision == Precision.SINGLE else EXACT_DOUBLE


def _profile_precision(profile) -> str:
    return (Precision.SINGLE if profile.dtype == np.float32
            else Precision.DOUBLE)


def run_request(engine: PricingEngine, request: PricingRequest,
                deadline_s: "float | None" = None):
    """Execute ``request`` on ``engine`` and return the raw engine result.

    This is the one seam every route shares: :func:`price` and
    :func:`greeks` call it with a shared or dedicated engine, the
    :class:`repro.service.PricingService` calls it with its *merged*
    request per flush.  The return value is the engine's own result
    (:class:`~repro.engine.engine.EngineResult` for ``task="price"``,
    the greeks result for ``task="greeks"``) with failures *recorded,
    not raised* — ``request.strict`` is applied later, per caller, by
    the result builders, so one strict requester cannot blow up a
    coalesced flush for everyone else.

    ``deadline_s`` (seconds of budget left, not an absolute time) is
    forwarded to the engine run, bounding its per-chunk timeout — the
    service computes it from the tightest live ``deadline_ms`` in the
    flush.
    """
    if request.task == "greeks":
        return engine.run_greeks(list(request.options), request.steps,
                                 bump_vol=request.bump_vol,
                                 bump_rate=request.bump_rate,
                                 deadline_s=deadline_s)
    return engine.run(list(request.options), request.steps,
                      deadline_s=deadline_s)


def raise_first_failure(failures: "Sequence[FailureRecord]"):
    """The historical strict contract: re-raise the first failure."""
    first = failures[0]
    if first.exception is not None:
        raise first.exception
    raise ReproError(
        f"option {first.index} failed after {first.attempts} "
        f"attempts: {first.error}: {first.message}")


def _price_result(request: PricingRequest, result) -> PriceResult:
    if request.strict and result.failures:
        raise_first_failure(result.failures)
    return PriceResult(prices=result.prices, route="engine",
                       stats=result.stats, failures=result.failures)


def _greeks_result(request: PricingRequest, result) -> GreeksResult:
    if request.strict and result.failures:
        raise_first_failure(result.failures)
    return GreeksResult(
        prices=result.prices, delta=result.delta, gamma=result.gamma,
        theta=result.theta, vega=result.vega, rho=result.rho,
        route="engine", stats=result.stats, failures=result.failures,
    )


# ---------------------------------------------------------------------------
# shared engines: reuse across façade calls instead of rebuild-per-call

_shared_lock = threading.Lock()
_shared_engines: "dict[tuple, tuple[PricingEngine, threading.Lock]]" = {}


def _shared_engine(request: PricingRequest):
    """The process-wide engine for this request's configuration.

    Engines are keyed by ``(kernel, precision, family, backend)`` and
    kept open across calls, so a caller looping ``price()`` over many
    batches no longer pays engine construction per call (for compiled
    backends that includes the one-time compile/load cost).  Each
    engine comes with its own lock — :class:`PricingEngine` runs one
    batch at a time — so concurrent façade calls serialise per
    configuration (use a :class:`repro.service.PricingService` for
    real concurrency).
    """
    key = (request.kernel, request.precision, request.family.value,
           request.backend)
    with _shared_lock:
        entry = _shared_engines.get(key)
        if entry is None or entry[0].closed:
            engine = PricingEngine(
                kernel=request.kernel,
                profile=_engine_profile(request.precision),
                family=request.family,
                config=EngineConfig(backend=request.backend),
            )
            entry = (engine, threading.Lock())
            _shared_engines[key] = entry
        return entry


def close_shared_engines() -> int:
    """Close every engine the façade is sharing; returns how many.

    Safe to call at any time — the next :func:`price`/:func:`greeks`
    call simply builds a fresh shared engine.  Also registered with
    :mod:`atexit`, so interpreter shutdown never leaks worker pools
    even when the caller forgets; calling it manually first is fine
    (the registry empties, the atexit pass closes zero engines).
    """
    with _shared_lock:
        entries = list(_shared_engines.values())
        _shared_engines.clear()
    for engine, lock in entries:
        with lock:
            engine.close()
    return len(entries)


atexit.register(close_shared_engines)


def _run_engine_route(request: PricingRequest, config, tracer,
                      engine: "PricingEngine | None"):
    """Run a request on the caller's, a dedicated, or the shared engine."""
    if engine is not None:
        # caller keeps ownership (and is responsible for serialising
        # access); a closed engine raises EngineError inside run()
        return run_request(engine, request)
    if config is not None or tracer is not None or request.workers:
        run_config = config
        if run_config is None and request.workers:
            run_config = EngineConfig(workers=int(request.workers))
        if request.backend != "auto":
            run_config = dc_replace(run_config or EngineConfig(),
                                    backend=request.backend)
        with PricingEngine(kernel=request.kernel,
                           profile=_engine_profile(request.precision),
                           family=request.family, config=run_config,
                           tracer=tracer) as dedicated:
            return run_request(dedicated, request)
    shared, lock = _shared_engine(request)
    with lock:
        return run_request(shared, request)


# ---------------------------------------------------------------------------
# the keyword façade


def price(
    options: Sequence[Option],
    *,
    steps: "int | Sequence[int]" = 1024,
    device: "str | BinomialAccelerator | None" = None,
    kernel: "str | None" = None,
    config: "EngineConfig | None" = None,
    workers: "int | None" = None,
    family: LatticeFamily = LatticeFamily.CRR,
    precision: str = Precision.DOUBLE,
    backend: str = "auto",
    tracer=None,
    strict: bool = True,
    engine: "PricingEngine | None" = None,
) -> PriceResult:
    """Price a batch of options through the configured route.

    Internally builds a :class:`PricingRequest` and executes it with
    :func:`run_request` — the same path the service and CLI use.

    :param options: the contracts to price.
    :param steps: tree depth — one value, or one per option (the
        engine route regroups heterogeneous streams; the accelerator
        route requires a single depth, like the hardware it models).
    :param device: ``None`` for the host engine, a platform name
        (``"fpga"``/``"gpu"``/``"cpu"``) for a modeled accelerator, or
        an existing :class:`BinomialAccelerator` to reuse (caller keeps
        ownership — it is not closed).
    :param kernel: ``"iv_a"``, ``"iv_b"`` or ``"reference"``; defaults
        to ``"reference"`` on the engine/cpu routes and ``"iv_b"`` on
        fpga/gpu.
    :param config: :class:`EngineConfig` for the pricing engine
        (either route); mutually exclusive with ``workers``.  Forces a
        dedicated engine for this call.
    :param workers: shorthand for ``EngineConfig(workers=...)``.
    :param family: lattice parameterisation.
    :param precision: ``"double"`` or ``"single"``.
    :param backend: kernel backend for the engine route — ``"auto"``
        (fastest available), ``"numpy"``, ``"cnative"`` or
        ``"numba"``.  Bit-identical prices either way; overrides the
        backend of an explicit ``config`` when not ``"auto"``.
    :param tracer: optional :class:`repro.obs.trace.Tracer` observing
        the engine run (``None`` = tracing disabled).  Forces a
        dedicated engine for this call.
    :param strict: engine route only — ``True`` re-raises the first
        pricing failure (the historical ``price_binomial_batch``
        contract); ``False`` returns NaN for quarantined options plus
        their :class:`FailureRecord` in :attr:`PriceResult.failures`.
    :param engine: an open :class:`PricingEngine` to run on (caller
        keeps ownership); mutually exclusive with ``config``/
        ``workers``/``tracer``.  With all four left default, calls
        reuse a process-wide shared engine per ``(kernel, precision,
        family)`` instead of rebuilding one per call.
    """
    options = list(options)
    if config is not None and workers is not None:
        raise ReproError("pass either config or workers, not both")
    if engine is not None and (config is not None or workers is not None
                               or tracer is not None):
        raise ReproError(
            "engine= is mutually exclusive with config/workers/tracer — "
            "configure the engine you pass in")

    if device is not None:
        return _price_accelerator(options, steps, device, kernel, config,
                                  family, precision, tracer)
    if not options:
        return PriceResult(prices=np.empty(0, dtype=np.float64),
                           route="engine")
    if engine is not None:
        request = PricingRequest(
            options=tuple(options), steps=_steps_spec(steps),
            kernel=engine.kernel, precision=_profile_precision(engine.profile),
            family=engine.family, task="price", strict=strict,
            backend=engine.config.backend)
    else:
        request = PricingRequest(
            options=tuple(options), steps=_steps_spec(steps),
            kernel=kernel or "reference", precision=precision,
            family=family, task="price", strict=strict, workers=workers,
            backend=backend)
    result = _run_engine_route(request, config, tracer, engine)
    return _price_result(request, result)


def greeks(
    options: Sequence[Option],
    *,
    steps: "int | Sequence[int]" = 512,
    kernel: str = "iv_b",
    config: "EngineConfig | None" = None,
    workers: "int | None" = None,
    family: LatticeFamily = LatticeFamily.CRR,
    precision: str = Precision.DOUBLE,
    backend: str = "auto",
    bump_vol: float = 1e-3,
    bump_rate: float = 1e-4,
    tracer=None,
    strict: bool = True,
    engine: "PricingEngine | None" = None,
) -> GreeksResult:
    """Batch price + delta/gamma/theta/vega/rho through the engine.

    Delta, gamma and theta are read off tree levels 0..2 of the *same*
    engine pricing pass that produces the prices (no re-pricing — the
    Hull lattice trick, batched); vega and rho are central finite
    differences over four bump-and-reprice passes scheduled as sibling
    chunk groups of the same run, so the whole workload inherits the
    engine's chunking, worker fan-out, retry/quarantine and
    span/metrics instrumentation.  The scalar counterpart (and test
    oracle) is :func:`repro.finance.greeks.lattice_greeks`.

    Internally builds a ``PricingRequest(task="greeks")`` and executes
    it with :func:`run_request`, exactly like :func:`price`.

    :param steps: tree depth (>= 3), one value or one per option.
    :param kernel: ``"iv_a"``, ``"iv_b"`` (default) or ``"reference"``.
    :param config: :class:`EngineConfig`; mutually exclusive with
        ``workers``.  Forces a dedicated engine for this call.
    :param workers: shorthand for ``EngineConfig(workers=...)``.
    :param family: lattice parameterisation (kernel IV.B requires CRR).
    :param precision: ``"double"`` or ``"single"``.
    :param backend: kernel backend — see :func:`price`.
    :param bump_vol: absolute volatility bump for the vega difference.
    :param bump_rate: absolute rate bump for the rho difference.
    :param tracer: optional :class:`repro.obs.trace.Tracer`.  Forces a
        dedicated engine for this call.
    :param strict: ``True`` re-raises the first pricing failure;
        ``False`` returns NaN in the affected columns plus
        :class:`FailureRecord` entries naming the failing pass.
    :param engine: an open :class:`PricingEngine` to run on (caller
        keeps ownership); mutually exclusive with ``config``/
        ``workers``/``tracer``.  Default calls share engines exactly
        like :func:`price`.
    """
    options = list(options)
    if config is not None and workers is not None:
        raise ReproError("pass either config or workers, not both")
    if engine is not None and (config is not None or workers is not None
                               or tracer is not None):
        raise ReproError(
            "engine= is mutually exclusive with config/workers/tracer — "
            "configure the engine you pass in")
    if not options:
        empty = np.empty(0, dtype=np.float64)
        return GreeksResult(prices=empty, delta=empty.copy(),
                            gamma=empty.copy(), theta=empty.copy(),
                            vega=empty.copy(), rho=empty.copy())
    if engine is not None:
        request = PricingRequest(
            options=tuple(options), steps=_steps_spec(steps),
            kernel=engine.kernel, precision=_profile_precision(engine.profile),
            family=engine.family, task="greeks", strict=strict,
            backend=engine.config.backend,
            bump_vol=bump_vol, bump_rate=bump_rate)
    else:
        request = PricingRequest(
            options=tuple(options), steps=_steps_spec(steps),
            kernel=kernel, precision=precision, family=family,
            task="greeks", strict=strict, workers=workers, backend=backend,
            bump_vol=bump_vol, bump_rate=bump_rate)
    result = _run_engine_route(request, config, tracer, engine)
    return _greeks_result(request, result)


def _steps_spec(steps) -> "int | tuple[int, ...]":
    if np.ndim(steps) == 0:
        return int(steps)
    return tuple(int(s) for s in steps)


def _price_accelerator(options, steps, device, kernel, config, family,
                       precision, tracer) -> PriceResult:
    if np.ndim(steps) != 0:
        raise ReproError(
            "accelerator routes price one tree depth per batch; pass a "
            "single steps value (or split the stream per depth)")
    if isinstance(device, BinomialAccelerator):
        accelerator, owned = device, False
    elif device in _DEVICES:
        if kernel is None:
            kernel = "reference" if device == "cpu" else "iv_b"
        accelerator, owned = BinomialAccelerator(
            platform=device, kernel=kernel, precision=precision,
            steps=int(steps), family=family, engine_config=config,
            tracer=tracer,
        ), True
    else:
        raise ReproError(
            f"device must be one of {_DEVICES}, a BinomialAccelerator, or "
            f"None for the host engine; got {device!r}")
    try:
        modeled = accelerator._price_batch_impl(options)
    finally:
        if owned:
            accelerator.close()
    return PriceResult(prices=modeled.prices, route="accelerator",
                       modeled=modeled)
