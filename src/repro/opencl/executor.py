"""Functional NDRange executor with real work-group barrier semantics.

This is the "device" half of the simulator.  It executes every
work-item of an NDRange as Python code with the OpenCL visibility
rules:

* **global memory**: shared :class:`Buffer` views, visible to every
  work-item and to the host (through the queue);
* **local memory**: one array per work-group, materialised from
  :class:`LocalMemory` descriptors, shared only within the group;
* **private memory**: ordinary Python locals of the kernel function.

Barrier-synchronised kernels are generator functions that ``yield`` at
every ``barrier(CLK_LOCAL_MEM_FENCE)`` point.  Work-items of one group
execute in lockstep *rounds*: each round advances every live work-item
to its next barrier (or to completion).  If, within a round, some
work-items hit a barrier while others return, the group has divergent
control flow around a barrier — undefined behaviour in real OpenCL —
and the executor raises :class:`BarrierDivergenceError` instead of
silently corrupting data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import (
    BarrierDivergenceError,
    InvalidWorkGroupError,
    OpenCLError,
)
from .device import Device, LaunchInfo
from .kernel import Kernel
from .memory import Buffer, LocalMemory

__all__ = ["WorkItemCtx", "execute_ndrange", "NDRangeStats"]


class WorkItemCtx:
    """The work-item's view of its indexing (``get_global_id`` etc.).

    One instance per work-item per launch.  Supports 1-D and 2-D
    NDRanges: the scalar attributes (``global_id`` and friends) carry
    dimension 0 for backward compatibility, while the ``get_*`` query
    methods take the OpenCL ``dim`` argument.  ``barrier()`` returns a
    token the kernel must ``yield`` (enforced by the executor).
    """

    __slots__ = ("global_ids", "local_ids", "group_ids", "local_sizes",
                 "global_sizes", "barriers_hit")

    #: token yielded at barriers (any yielded value is accepted; using
    #: the ctx method documents intent and counts barrier traffic)
    _BARRIER = "barrier"

    def __init__(self, global_id, local_id, group_id, local_size,
                 global_size):
        def tup(v):
            return (v,) if isinstance(v, int) else tuple(v)

        self.global_ids = tup(global_id)
        self.local_ids = tup(local_id)
        self.group_ids = tup(group_id)
        self.local_sizes = tup(local_size)
        self.global_sizes = tup(global_size)
        self.barriers_hit = 0

    # dimension-0 scalar views (the 1-D shorthand kernels use)
    @property
    def global_id(self) -> int:
        return self.global_ids[0]

    @property
    def local_id(self) -> int:
        return self.local_ids[0]

    @property
    def group_id(self) -> int:
        return self.group_ids[0]

    @property
    def local_size(self) -> int:
        return self.local_sizes[0]

    @property
    def global_size(self) -> int:
        return self.global_sizes[0]

    @property
    def num_groups(self) -> int:
        return self.global_sizes[0] // self.local_sizes[0]

    # OpenCL-style accessors
    def get_work_dim(self) -> int:
        return len(self.global_sizes)

    def get_global_id(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.global_ids[dim]

    def get_local_id(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.local_ids[dim]

    def get_group_id(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.group_ids[dim]

    def get_local_size(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.local_sizes[dim]

    def get_global_size(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.global_sizes[dim]

    def get_num_groups(self, dim: int = 0) -> int:
        self._check_dim(dim)
        return self.global_sizes[dim] // self.local_sizes[dim]

    def barrier(self) -> str:
        """Mark a work-group barrier; the kernel must ``yield`` this."""
        self.barriers_hit += 1
        return self._BARRIER

    def _check_dim(self, dim: int) -> None:
        if not 0 <= dim < len(self.global_sizes):
            raise OpenCLError(
                f"dimension {dim} outside this {len(self.global_sizes)}-D "
                "NDRange"
            )


@dataclass(frozen=True)
class NDRangeStats:
    """Execution statistics of one launch (consumed by experiments)."""

    launch: LaunchInfo
    barriers_per_group: int
    local_bytes_per_group: int


def _materialise_args(kernel: Kernel, local_arrays: dict) -> list:
    """Per-group argument list: buffers as views, locals as arrays."""
    out = []
    for position, arg in enumerate(kernel.bound_args()):
        if isinstance(arg, Buffer):
            out.append(arg.view())
        elif isinstance(arg, LocalMemory):
            out.append(local_arrays[position])
        else:
            out.append(arg)
    return out


def _normalize_shape(size, label: str) -> tuple:
    if isinstance(size, int):
        shape = (size,)
    else:
        shape = tuple(int(v) for v in size)
    if not 1 <= len(shape) <= 3:
        raise InvalidWorkGroupError(
            f"{label} must have 1-3 dimensions, got {len(shape)}"
        )
    if any(v <= 0 for v in shape):
        raise InvalidWorkGroupError(f"{label} dimensions must be positive: {shape}")
    return shape


def execute_ndrange(kernel: Kernel, global_size, local_size,
                    device: Device) -> NDRangeStats:
    """Run every work-item of an NDRange on the simulated device.

    :param kernel: kernel with all arguments bound.
    :param global_size: total work-items — an int (1-D) or a tuple of
        up to three dimensions; each must be a positive multiple of the
        matching ``local_size`` dimension.
    :param local_size: work-group shape; its *product* must respect the
        device's work-group limit.
    :raises InvalidWorkGroupError: on shape violations.
    :raises BarrierDivergenceError: on divergent barrier control flow.
    """
    import itertools
    import math

    global_shape = _normalize_shape(global_size, "global size")
    local_shape = _normalize_shape(local_size, "local size")
    if len(global_shape) != len(local_shape):
        raise InvalidWorkGroupError(
            f"global {global_shape} and local {local_shape} shapes must "
            "share a dimensionality"
        )
    for g, l in zip(global_shape, local_shape):
        if g % l != 0:
            raise InvalidWorkGroupError(
                f"global size {global_shape} not a per-dimension multiple "
                f"of local size {local_shape}"
            )
    group_items = math.prod(local_shape)
    if group_items > device.max_work_group_size:
        raise InvalidWorkGroupError(
            f"work-group of {group_items} items exceeds device limit "
            f"{device.max_work_group_size}"
        )

    bound = kernel.bound_args()
    local_bytes = kernel.local_mem_bytes()
    if local_bytes > device.local_mem_bytes:
        raise InvalidWorkGroupError(
            f"kernel requests {local_bytes} B of local memory; device has "
            f"{device.local_mem_bytes} B"
        )

    one_dim = len(global_shape) == 1
    groups_per_dim = tuple(g // l for g, l in zip(global_shape, local_shape))
    num_groups = math.prod(groups_per_dim)
    total_barriers = 0
    barriers_per_group = 0

    for group_idx in itertools.product(*(range(n) for n in groups_per_dim)):
        # Fresh local memory per work-group, as the standard requires.
        local_arrays = {
            position: arg.materialise()
            for position, arg in enumerate(bound)
            if isinstance(arg, LocalMemory)
        }
        args = _materialise_args(kernel, local_arrays)

        contexts = []
        for lid in itertools.product(*(range(n) for n in local_shape)):
            gid = tuple(g * l + i
                        for g, l, i in zip(group_idx, local_shape, lid))
            contexts.append(
                WorkItemCtx(
                    global_id=gid[0] if one_dim else gid,
                    local_id=lid[0] if one_dim else lid,
                    group_id=group_idx[0] if one_dim else group_idx,
                    local_size=local_shape[0] if one_dim else local_shape,
                    global_size=global_shape[0] if one_dim else global_shape,
                )
            )

        if kernel.is_generator:
            barriers_per_group = _run_group_lockstep(kernel, contexts, args)
        else:
            for ctx in contexts:
                kernel.func(ctx, *args)
            barriers_per_group = 0
        total_barriers += barriers_per_group * group_items

    launch = LaunchInfo(
        kernel_name=kernel.name,
        global_size=math.prod(global_shape),
        local_size=group_items,
        work_groups=num_groups,
        barriers=total_barriers,
        work_per_item=(
            kernel.meta.work_per_item(math.prod(global_shape), group_items)
            if kernel.meta.work_per_item
            else 1.0
        ),
    )
    return NDRangeStats(
        launch=launch,
        barriers_per_group=barriers_per_group,
        local_bytes_per_group=local_bytes,
    )


def _run_group_lockstep(kernel: Kernel, contexts, args) -> int:
    """Advance all work-items of one group barrier-by-barrier.

    Returns the number of barrier rounds executed.
    """
    generators = [kernel.func(ctx, *args) for ctx in contexts]
    live = list(range(len(generators)))
    rounds = 0
    while live:
        at_barrier = []
        finished = []
        for index in live:
            try:
                next(generators[index])
                at_barrier.append(index)
            except StopIteration:
                finished.append(index)
        if at_barrier and finished:
            raise BarrierDivergenceError(
                f"kernel {kernel.name!r}: work-items "
                f"{[contexts[i].local_ids for i in finished]} returned while "
                f"{len(at_barrier)} others wait at barrier {rounds + 1} — "
                "divergent control flow around a barrier"
            )
        if at_barrier:
            rounds += 1
        live = at_barrier
    return rounds
