"""Platform discovery for the simulated OpenCL runtime.

Real hosts call ``clGetPlatformIDs``; here a registry of simulated
platforms plays that role.  ``repro.devices.catalog`` registers the
three platforms of the paper (Altera-on-DE4, NVIDIA GTX660 Ti, Intel
Xeon) on import, and tests can register throwaway platforms of their
own.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OpenCLError
from .device import Device
from .types import DeviceType

__all__ = ["Platform", "register_platform", "get_platforms", "get_platform", "clear_platforms"]


@dataclass(frozen=True)
class Platform:
    """A vendor platform exposing one or more devices."""

    name: str
    vendor: str
    devices: tuple[Device, ...]
    version: str = "OpenCL 1.1 (simulated)"

    def get_devices(self, device_type: DeviceType | None = None) -> tuple[Device, ...]:
        """Devices of the platform, optionally filtered by type."""
        if device_type is None:
            return self.devices
        return tuple(d for d in self.devices if d.device_type is device_type)


_REGISTRY: dict[str, Platform] = {}


def register_platform(platform: Platform, replace: bool = True) -> Platform:
    """Add a platform to the discovery registry and return it."""
    if not replace and platform.name in _REGISTRY:
        raise OpenCLError(f"platform {platform.name!r} already registered")
    _REGISTRY[platform.name] = platform
    return platform


def get_platforms() -> tuple[Platform, ...]:
    """All registered platforms (``clGetPlatformIDs`` equivalent).

    Importing :mod:`repro.devices.catalog` populates the registry with
    the paper's three platforms if it is empty.
    """
    if not _REGISTRY:
        from ..devices import catalog

        catalog.register_all()
    return tuple(_REGISTRY.values())


def get_platform(name: str) -> Platform:
    """Look up one platform by exact name."""
    platforms = get_platforms()
    for platform in platforms:
        if platform.name == name:
            return platform
    known = ", ".join(sorted(p.name for p in platforms))
    raise OpenCLError(f"no platform named {name!r}; known: {known}")


def clear_platforms() -> None:
    """Empty the registry (test isolation helper)."""
    _REGISTRY.clear()
