"""A functional OpenCL 1.1 platform simulator (Figure 2 of the paper).

This package re-creates the OpenCL host/device structure in pure
Python: platforms expose devices; a context owns buffers, programs and
queues; kernels run as Python work-items over real global / local /
private memory levels, with genuine work-group barrier semantics; and
an in-order command queue advances a simulated clock through pluggable
device timing models.

Quick tour::

    from repro.opencl import Context, Device, DeviceType, LocalMemory

    device = Device("toy", DeviceType.ACCELERATOR)
    ctx = Context(device)
    buf = ctx.create_buffer_from(np.arange(8.0))

    def double_kernel(wi, data):
        gid = wi.get_global_id()
        data[gid] = 2.0 * data[gid]

    program = ctx.create_program({"double": double_kernel})
    queue = ctx.create_queue()
    queue.enqueue_nd_range_kernel(program.create_kernel("double").set_args(buf), 8, 4)
    result, _ = queue.enqueue_read_buffer(buf)
"""

from .context import Context
from .device import Device, LaunchInfo, TimingModel, ZeroTimingModel
from .executor import NDRangeStats, WorkItemCtx, execute_ndrange
from .kernel import Kernel
from .memory import Buffer, BufferView, LocalMemory
from .platform import (
    Platform,
    clear_platforms,
    get_platform,
    get_platforms,
    register_platform,
)
from .profiling import Event, TransferLedger, TransferRecord
from .program import KernelMeta, Program, kernel_metadata
from .queue import CommandQueue
from .types import (
    AddressSpace,
    CommandType,
    DeviceType,
    EventStatus,
    MemFlag,
    TransferDirection,
)

__all__ = [
    "Context",
    "Device",
    "LaunchInfo",
    "TimingModel",
    "ZeroTimingModel",
    "WorkItemCtx",
    "execute_ndrange",
    "NDRangeStats",
    "Kernel",
    "Buffer",
    "BufferView",
    "LocalMemory",
    "Platform",
    "register_platform",
    "get_platforms",
    "get_platform",
    "clear_platforms",
    "Event",
    "TransferRecord",
    "TransferLedger",
    "Program",
    "KernelMeta",
    "kernel_metadata",
    "CommandQueue",
    "DeviceType",
    "MemFlag",
    "TransferDirection",
    "CommandType",
    "EventStatus",
    "AddressSpace",
]
