"""Enumerations and constants mirroring the OpenCL 1.1 API surface.

The simulator intentionally keeps the *shape* of the Khronos API
(platforms -> devices -> context -> queues -> buffers/kernels) so the
two host programs of the paper read like their OpenCL originals, while
staying Pythonic (enums and exceptions instead of int status codes).
"""

from __future__ import annotations

import enum

__all__ = [
    "DeviceType",
    "MemFlag",
    "TransferDirection",
    "CommandType",
    "EventStatus",
    "AddressSpace",
]


class DeviceType(enum.Enum):
    """``CL_DEVICE_TYPE_*`` equivalent."""

    CPU = "cpu"
    GPU = "gpu"
    ACCELERATOR = "accelerator"  # FPGA boards enumerate as accelerators


class MemFlag(enum.Flag):
    """``CL_MEM_*`` allocation flags (validated on kernel access)."""

    READ_WRITE = enum.auto()
    READ_ONLY = enum.auto()
    WRITE_ONLY = enum.auto()
    COPY_HOST_PTR = enum.auto()


class TransferDirection(enum.Enum):
    """Direction of a host<->device buffer transfer."""

    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_HOST = "d2h"
    DEVICE_TO_DEVICE = "d2d"


class CommandType(enum.Enum):
    """What a queued command does (for profiling/event records)."""

    WRITE_BUFFER = "write_buffer"
    READ_BUFFER = "read_buffer"
    COPY_BUFFER = "copy_buffer"
    NDRANGE_KERNEL = "ndrange_kernel"
    MARKER = "marker"


class EventStatus(enum.Enum):
    """``CL_QUEUED/SUBMITTED/RUNNING/COMPLETE`` lifecycle states."""

    QUEUED = "queued"
    SUBMITTED = "submitted"
    RUNNING = "running"
    COMPLETE = "complete"


class AddressSpace(enum.Enum):
    """OpenCL memory hierarchy levels (Figure 2 of the paper)."""

    GLOBAL = "global"
    LOCAL = "local"
    PRIVATE = "private"
    CONSTANT = "constant"
