"""Events, profiling timestamps and the transfer ledger.

Real OpenCL exposes ``CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,END}``
on events; the simulated queue fills the same four timestamps from its
simulated clock.  The :class:`TransferLedger` additionally records
every host<->device transfer — this is the instrument that makes
kernel IV.A's ~19 MB-per-batch readback (the root cause of its poor
throughput) directly observable in experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .types import CommandType, EventStatus, TransferDirection

__all__ = ["Event", "TransferRecord", "TransferLedger"]


@dataclass
class Event:
    """Completion record of one enqueued command."""

    command_type: CommandType
    name: str
    queued_ns: float
    submit_ns: float
    start_ns: float
    end_ns: float
    status: EventStatus = EventStatus.COMPLETE
    #: free-form command details (bytes moved, launch shape, ...)
    info: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        """START->END duration, the usual profiling quantity."""
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns * 1e-6

    def wait(self) -> "Event":
        """Block until complete (``clWaitForEvents``).

        The simulated queue executes eagerly, so every event is already
        COMPLETE; provided so host programs read like their originals.
        """
        return self

    def as_dict(self) -> dict:
        """JSON-ready form (used by the trace/profiling exporters)."""
        return {
            "command": self.command_type.value,
            "name": self.name,
            "queued_ns": self.queued_ns,
            "submit_ns": self.submit_ns,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "status": self.status.value,
            "info": dict(self.info),
        }

    def __repr__(self) -> str:
        return (
            f"Event({self.command_type.value}, {self.name!r}, "
            f"{self.duration_ms:.3f} ms)"
        )


@dataclass(frozen=True)
class TransferRecord:
    """One host<->device transfer."""

    direction: TransferDirection
    nbytes: int
    buffer_name: str
    start_ns: float
    end_ns: float


class TransferLedger:
    """Accumulates every transfer a queue performs."""

    def __init__(self) -> None:
        self.records: list[TransferRecord] = []

    def add(self, record: TransferRecord) -> None:
        self.records.append(record)

    def total_bytes(self, direction: TransferDirection | None = None) -> int:
        """Bytes moved, optionally filtered by direction."""
        return sum(
            r.nbytes for r in self.records
            if direction is None or r.direction is direction
        )

    def count(self, direction: TransferDirection | None = None) -> int:
        """Number of transfers, optionally filtered by direction."""
        return sum(
            1 for r in self.records
            if direction is None or r.direction is direction
        )

    def total_time_ns(self, direction: TransferDirection | None = None) -> float:
        """Simulated time spent transferring."""
        return sum(
            r.end_ns - r.start_ns for r in self.records
            if direction is None or r.direction is direction
        )

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
