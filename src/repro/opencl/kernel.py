"""Kernel objects and argument binding.

Mirrors ``clCreateKernel`` + ``clSetKernelArg``: a kernel knows its
function, expected argument count and currently bound arguments.
Buffers are bound as :class:`~repro.opencl.memory.Buffer` and handed to
the work-item function as flag-enforcing views; local allocations are
bound as :class:`~repro.opencl.memory.LocalMemory` descriptors and
materialised per work-group by the executor; everything else is passed
through as a scalar/constant.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from ..errors import InvalidArgumentError
from .memory import Buffer, LocalMemory
from .program import KernelMeta

__all__ = ["Kernel"]

_UNSET = object()


class Kernel:
    """A kernel plus its bound arguments."""

    def __init__(self, program, name: str, func: Callable):
        self.program = program
        self.name = name
        self.func = func
        params = list(inspect.signature(func).parameters)
        self.arg_names: tuple[str, ...] = tuple(params[1:])  # skip ctx
        self._args: list[Any] = [_UNSET] * len(self.arg_names)
        self.meta: KernelMeta = getattr(func, "__kernel_meta__", KernelMeta())
        self.is_generator = inspect.isgeneratorfunction(func)

    @property
    def num_args(self) -> int:
        return len(self.arg_names)

    def set_arg(self, index: int, value: Any) -> None:
        """Bind one argument (``clSetKernelArg``)."""
        if not 0 <= index < self.num_args:
            raise InvalidArgumentError(
                f"kernel {self.name!r} has {self.num_args} args; index {index} invalid"
            )
        self._args[index] = value

    def set_args(self, *values: Any) -> "Kernel":
        """Bind all arguments positionally; returns self for chaining."""
        if len(values) != self.num_args:
            raise InvalidArgumentError(
                f"kernel {self.name!r} expects {self.num_args} args "
                f"({', '.join(self.arg_names)}), got {len(values)}"
            )
        self._args = list(values)
        return self

    def bound_args(self) -> tuple[Any, ...]:
        """All arguments, raising if any is unset."""
        missing = [
            name for name, value in zip(self.arg_names, self._args)
            if value is _UNSET
        ]
        if missing:
            raise InvalidArgumentError(
                f"kernel {self.name!r} launched with unset args: {missing}"
            )
        return tuple(self._args)

    def local_mem_bytes(self) -> int:
        """Total per-work-group local memory requested by bound args."""
        return sum(a.nbytes for a in self._args if isinstance(a, LocalMemory))

    def __repr__(self) -> str:
        return f"Kernel({self.name!r}, args={list(self.arg_names)})"
