"""Simulated device memory objects.

Global memory buffers are numpy arrays owned by the device side of the
simulation; the host only touches them through queue commands, exactly
as in real OpenCL where ``clEnqueueWriteBuffer``/``ReadBuffer`` are the
only doorway.  Local memory is a per-launch descriptor materialised
once per work-group by the executor.  Both kinds count their accesses
so dataflow experiments (E4/E5) can report traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..errors import MemoryError_, OpenCLError
from .types import AddressSpace, MemFlag

__all__ = ["Buffer", "LocalMemory", "BufferView"]

_buffer_ids = itertools.count()


class Buffer:
    """A global-memory buffer living on the simulated device.

    Create with :meth:`allocate` (size + dtype) or :meth:`from_array`
    (``CL_MEM_COPY_HOST_PTR`` equivalent).  Kernels access the contents
    through :class:`BufferView`, which enforces read/write flags and
    counts accesses; hosts go through the command queue.
    """

    def __init__(self, shape, dtype=np.float64, flags: MemFlag = MemFlag.READ_WRITE):
        self._data = np.zeros(shape, dtype=dtype)
        self.flags = flags
        self.id = next(_buffer_ids)
        self.name = f"buf{self.id}"
        #: device-side access counters (elements, not bytes)
        self.device_reads = 0
        self.device_writes = 0
        #: host-side transfer counters (bytes)
        self.bytes_written_from_host = 0
        self.bytes_read_to_host = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def allocate(cls, shape, dtype=np.float64,
                 flags: MemFlag = MemFlag.READ_WRITE) -> "Buffer":
        """``clCreateBuffer`` without host pointer: zero-initialised."""
        return cls(shape, dtype, flags)

    @classmethod
    def from_array(cls, array: np.ndarray,
                   flags: MemFlag = MemFlag.READ_WRITE) -> "Buffer":
        """``clCreateBuffer`` with ``CL_MEM_COPY_HOST_PTR``."""
        array = np.asarray(array)
        buf = cls(array.shape, array.dtype, flags | MemFlag.COPY_HOST_PTR)
        buf._data[...] = array
        return buf

    # -- geometry -----------------------------------------------------------

    @property
    def shape(self) -> tuple:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def size(self) -> int:
        """Element count."""
        return self._data.size

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"Buffer(#{self.id}, shape={self.shape}, dtype={self.dtype})"

    # -- privileged access (queue / executor only) --------------------------

    def _host_write(self, array: np.ndarray, offset: int = 0) -> int:
        """Copy host data in; returns bytes moved.  Queue-internal."""
        array = np.asarray(array, dtype=self._data.dtype)
        flat = self._data.reshape(-1)
        if offset < 0 or offset + array.size > flat.size:
            raise MemoryError_(
                f"write of {array.size} elements at offset {offset} exceeds "
                f"buffer of {flat.size} elements"
            )
        flat[offset:offset + array.size] = array.reshape(-1)
        nbytes = array.size * self._data.itemsize
        self.bytes_written_from_host += nbytes
        return nbytes

    def _host_read(self, offset: int = 0, count: int | None = None) -> np.ndarray:
        """Copy device data out; queue-internal."""
        flat = self._data.reshape(-1)
        count = flat.size - offset if count is None else count
        if offset < 0 or count < 0 or offset + count > flat.size:
            raise MemoryError_(
                f"read of {count} elements at offset {offset} exceeds "
                f"buffer of {flat.size} elements"
            )
        out = flat[offset:offset + count].copy()
        self.bytes_read_to_host += out.nbytes
        return out

    def view(self) -> "BufferView":
        """Kernel-side view enforcing the allocation flags."""
        return BufferView(self)

    # -- sub-buffers ---------------------------------------------------------

    def create_sub_buffer(self, origin: int, count: int,
                          flags: MemFlag | None = None) -> "Buffer":
        """A window onto this buffer sharing its storage.

        Mirrors ``clCreateSubBuffer``: the sub-buffer aliases the
        parent's memory (writes through either are visible to both) and
        may carry narrower access flags.  Only 1-D element ranges are
        supported, which covers the ping-pong slot windows host
        programs carve out.
        """
        flat = self._data.reshape(-1)
        if origin < 0 or count < 1 or origin + count > flat.size:
            raise MemoryError_(
                f"sub-buffer [{origin}, {origin + count}) outside parent "
                f"of {flat.size} elements"
            )
        sub = Buffer.__new__(Buffer)
        sub._data = flat[origin:origin + count]  # numpy view: shared storage
        sub.flags = flags if flags is not None else self.flags
        sub.id = next(_buffer_ids)
        sub.name = f"{self.name}[{origin}:{origin + count}]"
        sub.device_reads = 0
        sub.device_writes = 0
        sub.bytes_written_from_host = 0
        sub.bytes_read_to_host = 0
        sub.parent = self
        return sub


class BufferView:
    """Flag-enforcing, access-counting window a kernel sees over a Buffer.

    Supports integer and slice indexing like a 1-D/N-D numpy array.
    Reads on ``WRITE_ONLY`` and writes on ``READ_ONLY`` buffers raise,
    mirroring undefined behaviour in real CL that we choose to trap.
    """

    __slots__ = ("_buffer",)

    def __init__(self, buffer: Buffer):
        self._buffer = buffer

    @property
    def buffer(self) -> Buffer:
        return self._buffer

    @property
    def shape(self) -> tuple:
        return self._buffer.shape

    def __len__(self) -> int:
        return len(self._buffer)

    def __getitem__(self, index):
        if self._buffer.flags & MemFlag.WRITE_ONLY:
            raise OpenCLError(
                f"kernel read from WRITE_ONLY buffer {self._buffer.name}",
                code="CL_INVALID_OPERATION",
            )
        value = self._buffer._data[index]
        self._buffer.device_reads += int(np.size(value))
        return value

    def __setitem__(self, index, value) -> None:
        if self._buffer.flags & MemFlag.READ_ONLY:
            raise OpenCLError(
                f"kernel write to READ_ONLY buffer {self._buffer.name}",
                code="CL_INVALID_OPERATION",
            )
        self._buffer._data[index] = value
        self._buffer.device_writes += int(np.size(value))


@dataclass(frozen=True)
class LocalMemory:
    """Descriptor for a per-work-group local allocation.

    Passed as a kernel argument (like ``clSetKernelArg`` with a size
    and NULL pointer); the executor materialises one numpy array per
    work-group.  The paper's kernel IV.B stores the shared option-value
    row here (Figure 4).
    """

    shape: tuple
    dtype: np.dtype = np.dtype(np.float64)

    def __init__(self, shape, dtype=np.float64):
        object.__setattr__(self, "shape", tuple(np.atleast_1d(shape)) if not isinstance(shape, tuple) else shape)
        object.__setattr__(self, "dtype", np.dtype(dtype))

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * self.dtype.itemsize

    def materialise(self) -> np.ndarray:
        """One concrete array per work-group (executor-internal)."""
        return np.zeros(self.shape, dtype=self.dtype)

    address_space = AddressSpace.LOCAL
