"""Simulated OpenCL devices.

A :class:`Device` carries the queryable properties of a CL device
(compute units, memory sizes, work-group limits) plus an optional
*timing model* used by command queues to advance the simulated clock.
The timing model is a small protocol so the ``repro.devices`` package
can plug in calibrated FPGA/GPU/CPU performance models without this
package depending on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from ..errors import DeviceModelError
from .types import DeviceType, TransferDirection

__all__ = ["Device", "TimingModel", "ZeroTimingModel", "LaunchInfo"]


@dataclass(frozen=True)
class LaunchInfo:
    """Summary of one NDRange launch handed to the timing model."""

    kernel_name: str
    global_size: int
    local_size: int
    work_groups: int
    #: total barrier waits executed across all work-items
    barriers: int = 0
    #: kernel-declared weight of one work-item (e.g. loop trip count);
    #: kernels may expose this through their metadata, default 1.
    work_per_item: float = 1.0


@runtime_checkable
class TimingModel(Protocol):
    """Pluggable simulated-time provider for a device."""

    def transfer_ns(self, nbytes: int, direction: TransferDirection) -> float:
        """Simulated duration of a host<->device transfer."""
        ...

    def ndrange_ns(self, launch: LaunchInfo) -> float:
        """Simulated duration of a kernel launch."""
        ...


class ZeroTimingModel:
    """Functional-only timing: every command takes zero simulated time.

    Used by unit tests that only care about results, and as the default
    when a device is created without a calibrated model.
    """

    def transfer_ns(self, nbytes: int, direction: TransferDirection) -> float:
        return 0.0

    def ndrange_ns(self, launch: LaunchInfo) -> float:
        return 0.0


@dataclass
class Device:
    """A simulated OpenCL device.

    :param name: marketing name, e.g. ``"Terasic DE4 (Stratix IV 4SGX530)"``.
    :param device_type: CPU / GPU / ACCELERATOR.
    :param compute_units: ``CL_DEVICE_MAX_COMPUTE_UNITS``.
    :param global_mem_bytes: capacity of global memory.
    :param local_mem_bytes: per-work-group local memory capacity.
    :param max_work_group_size: largest allowed work-group.
    :param timing_model: optional simulated-time provider.
    :param double_precision: whether the device supports fp64 kernels.
    """

    name: str
    device_type: DeviceType
    compute_units: int = 1
    global_mem_bytes: int = 2 * 1024**3
    local_mem_bytes: int = 48 * 1024
    max_work_group_size: int = 1024
    timing_model: object = field(default_factory=ZeroTimingModel)
    double_precision: bool = True

    def __post_init__(self) -> None:
        if self.compute_units < 1:
            raise DeviceModelError("compute_units must be >= 1")
        if self.max_work_group_size < 1:
            raise DeviceModelError("max_work_group_size must be >= 1")
        if self.global_mem_bytes <= 0 or self.local_mem_bytes <= 0:
            raise DeviceModelError("memory sizes must be positive")
        if not isinstance(self.timing_model, TimingModel):
            raise DeviceModelError(
                "timing_model must provide transfer_ns() and ndrange_ns()"
            )

    def __repr__(self) -> str:  # keep large numbers readable in logs
        return (
            f"Device({self.name!r}, {self.device_type.value}, "
            f"CUs={self.compute_units}, "
            f"global={self.global_mem_bytes // 1024**2} MiB, "
            f"local={self.local_mem_bytes // 1024} KiB)"
        )

    def get_info(self, key: str):
        """``clGetDeviceInfo`` lookalike for the common queries.

        Accepts the ``CL_DEVICE_*`` constant names the host programs of
        the era were written against; raises :class:`DeviceModelError`
        for keys the simulator does not carry.
        """
        table = {
            "CL_DEVICE_NAME": self.name,
            "CL_DEVICE_TYPE": self.device_type,
            "CL_DEVICE_MAX_COMPUTE_UNITS": self.compute_units,
            "CL_DEVICE_GLOBAL_MEM_SIZE": self.global_mem_bytes,
            "CL_DEVICE_LOCAL_MEM_SIZE": self.local_mem_bytes,
            "CL_DEVICE_MAX_WORK_GROUP_SIZE": self.max_work_group_size,
            "CL_DEVICE_DOUBLE_FP_CONFIG": self.double_precision,
            "CL_DEVICE_EXTENSIONS": (
                "cl_khr_fp64" if self.double_precision else ""
            ),
        }
        try:
            return table[key]
        except KeyError:
            raise DeviceModelError(
                f"unknown device-info key {key!r}; known: {sorted(table)}"
            ) from None
