"""OpenCL context: the owner of buffers, programs and queues.

A context groups the devices an application talks to, exactly like
``clCreateContext``.  Factory methods keep object creation discoverable
(`ctx.create_buffer`, `ctx.create_program`, `ctx.create_queue`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import OpenCLError
from .device import Device
from .memory import Buffer
from .types import MemFlag

__all__ = ["Context"]


class Context:
    """A simulated ``cl_context`` over one or more devices."""

    def __init__(self, devices: Sequence[Device] | Device):
        if isinstance(devices, Device):
            devices = [devices]
        devices = list(devices)
        if not devices:
            raise OpenCLError("a context needs at least one device")
        self.devices: tuple[Device, ...] = tuple(devices)
        self.buffers: list[Buffer] = []

    @property
    def device(self) -> Device:
        """The first (often only) device — convenience accessor."""
        return self.devices[0]

    # -- factories ----------------------------------------------------------

    def create_buffer(self, shape, dtype=np.float64,
                      flags: MemFlag = MemFlag.READ_WRITE) -> Buffer:
        """Allocate a zero-initialised global-memory buffer."""
        buf = Buffer.allocate(shape, dtype, flags)
        self._track(buf)
        return buf

    def create_buffer_from(self, array: np.ndarray,
                           flags: MemFlag = MemFlag.READ_WRITE) -> Buffer:
        """Allocate a buffer initialised from host data."""
        buf = Buffer.from_array(array, flags)
        self._track(buf)
        return buf

    def create_program(self, kernels) -> "Program":
        """Build a program from ``{name: python_callable}``."""
        from .program import Program

        return Program(self, kernels).build()

    def create_queue(self, device: Device | None = None, profiling: bool = True,
                     overlap: bool = False, fault_injector=None):
        """Create a command queue on ``device``.

        ``overlap=True`` gives the dual-engine (DMA + compute) timing
        discipline; ``fault_injector`` installs a transport fault
        schedule — see :mod:`repro.opencl.queue`.
        """
        from .queue import CommandQueue

        device = device or self.device
        if device not in self.devices:
            raise OpenCLError("queue device does not belong to this context")
        return CommandQueue(self, device, profiling=profiling, overlap=overlap,
                            fault_injector=fault_injector)

    # -- bookkeeping --------------------------------------------------------

    def _track(self, buf: Buffer) -> None:
        total = sum(b.nbytes for b in self.buffers) + buf.nbytes
        limit = min(d.global_mem_bytes for d in self.devices)
        if total > limit:
            raise OpenCLError(
                f"allocating {buf.nbytes} bytes exceeds device global memory "
                f"({total} > {limit})",
                code="CL_MEM_OBJECT_ALLOCATION_FAILURE",
            )
        self.buffers.append(buf)

    def total_allocated_bytes(self) -> int:
        """Bytes of global memory currently allocated in this context."""
        return sum(b.nbytes for b in self.buffers)

    def release(self, buf: Buffer) -> None:
        """Free a buffer (``clReleaseMemObject``)."""
        try:
            self.buffers.remove(buf)
        except ValueError:
            raise OpenCLError("buffer does not belong to this context") from None
