"""Programs: collections of kernels written as Python callables.

A kernel "source" is a Python function whose first parameter is the
work-item context (see :mod:`repro.opencl.executor`).  Kernels that
synchronise must be *generator* functions and ``yield ctx.barrier()``
at every barrier; kernels without barriers are plain functions.  The
:func:`kernel_metadata` decorator attaches optional hints (e.g. a
work-per-item estimate) consumed by device timing models.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..errors import OpenCLError

__all__ = ["Program", "kernel_metadata", "KernelMeta"]


@dataclass(frozen=True)
class KernelMeta:
    """Optional per-kernel hints attached by :func:`kernel_metadata`.

    :param work_per_item: callable ``(global_size, local_size) -> float``
        estimating the inner-loop trip count of one work-item; used by
        timing models to scale simulated kernel durations.
    """

    work_per_item: Callable[[int, int], float] | None = None


def kernel_metadata(work_per_item: Callable[[int, int], float] | None = None):
    """Decorator attaching :class:`KernelMeta` to a kernel function."""

    def wrap(func):
        func.__kernel_meta__ = KernelMeta(work_per_item=work_per_item)
        return func

    return wrap


class Program:
    """A built collection of kernels (``clCreateProgram``+``clBuildProgram``).

    :param context: owning :class:`repro.opencl.context.Context`.
    :param kernels: mapping of kernel name to Python callable.
    """

    def __init__(self, context, kernels: Mapping[str, Callable]):
        if not kernels:
            raise OpenCLError("a program needs at least one kernel")
        self.context = context
        self._sources = dict(kernels)
        self.build_log = ""
        self._built = False

    def build(self) -> "Program":
        """Validate every kernel signature; idempotent."""
        lines = []
        for name, func in self._sources.items():
            if not callable(func):
                raise OpenCLError(f"kernel {name!r} is not callable")
            params = list(inspect.signature(func).parameters)
            if not params:
                raise OpenCLError(
                    f"kernel {name!r} must take the work-item context as "
                    "its first parameter"
                )
            kind = "generator (barrier-capable)" if inspect.isgeneratorfunction(func) else "plain"
            lines.append(f"kernel {name}: {len(params) - 1} args, {kind}")
        self.build_log = "\n".join(lines)
        self._built = True
        return self

    @property
    def kernel_names(self) -> tuple[str, ...]:
        return tuple(self._sources)

    def create_kernel(self, name: str):
        """Instantiate a :class:`repro.opencl.kernel.Kernel`."""
        from .kernel import Kernel

        if not self._built:
            raise OpenCLError("program must be built before creating kernels")
        if name not in self._sources:
            raise OpenCLError(
                f"no kernel named {name!r}; program has {sorted(self._sources)}"
            )
        return Kernel(self, name, self._sources[name])
