"""Command queue with a simulated clock (serial or overlapped).

The queue is where the functional simulation meets the timing model:
every command executes immediately (so results are always consistent),
while its simulated duration — from the device's
:class:`~repro.opencl.device.TimingModel` — advances the simulated
clock and is recorded on the returned
:class:`~repro.opencl.profiling.Event`.

Two timing disciplines are offered:

* **serial** (default): commands occupy one timeline back to back.
  This is the discipline the Table II calibration uses — the paper's
  measured numbers already net out whatever overlap the real runtime
  achieved.
* **overlap** (``CommandQueue(..., overlap=True)``): transfers run on a
  DMA engine and kernels on the compute engine concurrently, commands
  only waiting for data hazards on the buffers they touch — modelling
  the paper's "Memory operations and work-items executions are
  overlapped with one another and synchronized by the host" for
  what-if analyses.

The paper's host programs interact with devices exclusively through
these entry points (Figure 3/Figure 4 "external operations"):
``enqueue_write_buffer``, ``enqueue_nd_range_kernel``,
``enqueue_read_buffer`` and ``finish``.
"""

from __future__ import annotations

import numpy as np

from ..errors import OpenCLError
# obs submodules are imported directly (not via the repro.obs facade)
# so the exporter — which imports this package — cannot cycle back.
from ..obs import keys as obs_keys
from ..obs.metrics import get_registry
from ..obs.trace import NULL_SPAN
from .context import Context
from .device import Device
from .executor import execute_ndrange
from .kernel import Kernel
from .memory import Buffer
from .profiling import Event, TransferLedger, TransferRecord
from .types import CommandType, MemFlag, TransferDirection

__all__ = ["CommandQueue"]

#: Span kind of commands recorded under an attached span — the
#: exporter (:mod:`repro.obs.export`) keys on this to rebuild the
#: simulated-clock timeline from a trace dump.
QUEUE_COMMAND_KIND = "queue-command"


class CommandQueue:
    """An in-order ``cl_command_queue`` with profiling always available.

    ``fault_injector`` (e.g. a
    :class:`~repro.engine.faults.TransportFaultInjector`) is consulted
    before every host<->device transfer and kernel launch; it may raise
    :class:`~repro.errors.TransportFaultError` to simulate the
    recoverable transport failures a deployed accelerator sees, before
    any buffer state changes — a failed transfer leaves the device
    untouched, so the host can safely retry the enqueue.
    """

    def __init__(self, context: Context, device: Device,
                 profiling: bool = True, overlap: bool = False,
                 fault_injector=None):
        self.context = context
        self.device = device
        self.profiling = profiling
        self.overlap = overlap
        self.fault_injector = fault_injector
        self.events: list[Event] = []
        self.transfers = TransferLedger()
        self._span = NULL_SPAN
        self._clock_ns = 0.0
        self._mapped: dict = {}
        # overlap-mode state: per-engine availability and per-buffer
        # hazard times (end of last write / end of last access)
        self._engine_free = {"dma": 0.0, "kernel": 0.0}
        self._last_write_end: dict = {}
        self._last_access_end: dict = {}

    # -- time ---------------------------------------------------------------

    @property
    def clock_ns(self) -> float:
        """Current simulated time of the queue."""
        return self._clock_ns

    @property
    def clock_s(self) -> float:
        return self._clock_ns * 1e-9

    def reset_clock(self) -> None:
        """Zero the simulated clock and forget events/transfers."""
        self._clock_ns = 0.0
        self.events.clear()
        self.transfers.clear()
        self._engine_free = {"dma": 0.0, "kernel": 0.0}
        self._last_write_end.clear()
        self._last_access_end.clear()

    # -- observability ------------------------------------------------------

    def attach_span(self, span) -> None:
        """Record every subsequent command as a child span of ``span``.

        Each command becomes one ``queue-command`` child carrying the
        *simulated* clock in its attributes (``sim_queued_ns`` /
        ``sim_start_ns`` / ``sim_end_ns``), so a trace dump can replay
        the DMA/kernel lane timeline offline
        (:func:`repro.obs.export.render_queue_timeline`).  Pass
        :data:`~repro.obs.trace.NULL_SPAN` (or call
        :meth:`detach_span`) to stop recording.
        """
        self._span = span if span is not None else NULL_SPAN

    def detach_span(self) -> None:
        """Stop mirroring commands into an attached span."""
        self._span = NULL_SPAN

    @staticmethod
    def _check_wait_list(wait_for) -> float:
        """Validate an event wait list; returns the latest end time.

        In serial mode in-order execution already satisfies every wait
        list; in overlap mode the returned time becomes an additional
        start constraint.  Either way, passing a non-event is caught.
        """
        if wait_for is None:
            return 0.0
        latest = 0.0
        for event in wait_for:
            if not isinstance(event, Event):
                raise OpenCLError(
                    f"wait list entries must be Events, got {type(event).__name__}",
                    code="CL_INVALID_EVENT_WAIT_LIST",
                )
            latest = max(latest, event.end_ns)
        return latest

    def _record(self, command_type: CommandType, name: str,
                duration_ns: float, info: dict, engine: str = "dma",
                reads: tuple = (), writes: tuple = (),
                after_ns: float = 0.0) -> Event:
        """Timestamp and log one command.

        Serial mode: start at the single clock.  Overlap mode: start
        when this command's engine is free, its data hazards are clear
        (RAW on ``reads``, WAR/WAW on ``writes``) and any wait-list
        events have completed.
        """
        queued = self._clock_ns if not self.overlap else min(
            self._engine_free.values())
        if not self.overlap:
            start = self._clock_ns
        else:
            start = max(self._engine_free[engine], after_ns)
            for buf in reads:
                start = max(start, self._last_write_end.get(buf.id, 0.0))
            for buf in writes:
                start = max(start, self._last_access_end.get(buf.id, 0.0))
        end = start + duration_ns
        if self.overlap:
            self._engine_free[engine] = end
            for buf in reads:
                self._last_access_end[buf.id] = max(
                    self._last_access_end.get(buf.id, 0.0), end)
            for buf in writes:
                self._last_write_end[buf.id] = max(
                    self._last_write_end.get(buf.id, 0.0), end)
                self._last_access_end[buf.id] = max(
                    self._last_access_end.get(buf.id, 0.0), end)
        self._clock_ns = max(self._clock_ns, end)
        event = Event(
            command_type=command_type,
            name=name,
            queued_ns=queued,
            submit_ns=queued,
            start_ns=start,
            end_ns=end,
            info=info,
        )
        if self.profiling:
            self.events.append(event)
        registry = get_registry()
        registry.counter(
            obs_keys.QUEUE_COMMANDS_TOTAL,
            "Commands executed by simulated command queues",
        ).inc(1, command=command_type.value, engine=engine)
        registry.counter(
            obs_keys.QUEUE_SIMULATED_BUSY_SECONDS,
            "Simulated seconds of queue-engine occupancy",
        ).inc(duration_ns * 1e-9, engine=engine)
        if self._span is not NULL_SPAN:
            self._span.child(
                name, QUEUE_COMMAND_KIND,
                command=command_type.value, engine=engine,
                sim_queued_ns=queued, sim_start_ns=start, sim_end_ns=end,
                **{k: v for k, v in info.items()
                   if isinstance(v, (int, float, str, bool))},
            ).end()
        return event

    # -- commands -----------------------------------------------------------

    def enqueue_write_buffer(self, buf: Buffer, host_array: np.ndarray,
                             offset: int = 0, wait_for=None) -> Event:
        """Copy host data into a device buffer."""
        after = self._check_wait_list(wait_for)
        host_array = np.asarray(host_array)
        if self.fault_injector is not None:
            self.fault_injector.on_transfer(
                host_array.nbytes, TransferDirection.HOST_TO_DEVICE)
        nbytes = buf._host_write(host_array, offset)
        duration = self.device.timing_model.transfer_ns(
            nbytes, TransferDirection.HOST_TO_DEVICE
        )
        event = self._record(
            CommandType.WRITE_BUFFER, buf.name, duration,
            {"bytes": nbytes, "offset": offset},
            engine="dma", writes=(buf,), after_ns=after,
        )
        self.transfers.add(
            TransferRecord(
                direction=TransferDirection.HOST_TO_DEVICE,
                nbytes=nbytes,
                buffer_name=buf.name,
                start_ns=event.start_ns,
                end_ns=event.end_ns,
            )
        )
        return event

    def enqueue_read_buffer(self, buf: Buffer, offset: int = 0,
                            count: int | None = None,
                            wait_for=None) -> tuple[np.ndarray, Event]:
        """Copy device data back to the host; returns (data, event)."""
        after = self._check_wait_list(wait_for)
        if self.fault_injector is not None:
            self.fault_injector.on_transfer(
                buf.nbytes, TransferDirection.DEVICE_TO_HOST)
        data = buf._host_read(offset, count)
        duration = self.device.timing_model.transfer_ns(
            data.nbytes, TransferDirection.DEVICE_TO_HOST
        )
        event = self._record(
            CommandType.READ_BUFFER, buf.name, duration,
            {"bytes": data.nbytes, "offset": offset},
            engine="dma", reads=(buf,), after_ns=after,
        )
        self.transfers.add(
            TransferRecord(
                direction=TransferDirection.DEVICE_TO_HOST,
                nbytes=data.nbytes,
                buffer_name=buf.name,
                start_ns=event.start_ns,
                end_ns=event.end_ns,
            )
        )
        return data, event

    def enqueue_copy_buffer(self, src: Buffer, dst: Buffer) -> Event:
        """Device-to-device copy (``clEnqueueCopyBuffer``)."""
        if src.nbytes != dst.nbytes:
            raise OpenCLError("copy_buffer requires equal-size buffers")
        dst._data[...] = src._data.reshape(dst.shape)
        duration = self.device.timing_model.transfer_ns(
            src.nbytes, TransferDirection.DEVICE_TO_DEVICE
        )
        return self._record(
            CommandType.COPY_BUFFER, f"{src.name}->{dst.name}", duration,
            {"bytes": src.nbytes},
            engine="dma", reads=(src,), writes=(dst,),
        )

    def enqueue_nd_range_kernel(self, kernel: Kernel, global_size: int,
                                local_size: int | None = None,
                                wait_for=None) -> Event:
        """Execute a kernel over a 1-D NDRange.

        ``local_size=None`` lets the runtime pick (here: one group).
        """
        after = self._check_wait_list(wait_for)
        if self.fault_injector is not None:
            self.fault_injector.on_launch(kernel.name)
        if local_size is None:
            if isinstance(global_size, int):
                local_size = min(global_size, self.device.max_work_group_size)
                while global_size % local_size != 0:
                    local_size -= 1
            else:
                local_size = tuple(1 for _ in global_size)
        stats = execute_ndrange(kernel, global_size, local_size, self.device)
        duration = self.device.timing_model.ndrange_ns(stats.launch)
        # hazard classification for overlap mode: READ_ONLY buffers are
        # pure reads, WRITE_ONLY pure writes, everything else both
        reads, writes = [], []
        for arg in kernel.bound_args():
            if isinstance(arg, Buffer):
                if arg.flags & MemFlag.READ_ONLY:
                    reads.append(arg)
                elif arg.flags & MemFlag.WRITE_ONLY:
                    writes.append(arg)
                else:
                    reads.append(arg)
                    writes.append(arg)
        return self._record(
            CommandType.NDRANGE_KERNEL, kernel.name, duration,
            {
                "global_size": global_size,
                "local_size": local_size,
                "work_groups": stats.launch.work_groups,
                "barriers_per_group": stats.barriers_per_group,
                "local_bytes_per_group": stats.local_bytes_per_group,
            },
            engine="kernel", reads=tuple(reads), writes=tuple(writes),
            after_ns=after,
        )

    def enqueue_fill_buffer(self, buf: Buffer, value,
                            wait_for=None) -> Event:
        """Fill an entire buffer with one value (``clEnqueueFillBuffer``).

        The fill pattern travels once over the host link (pattern size,
        not buffer size — the device-side DMA engine replicates it), so
        this is the cheap way to initialise the ping-pong buffers.
        """
        after = self._check_wait_list(wait_for)
        buf._data[...] = value
        duration = self.device.timing_model.transfer_ns(
            buf.dtype.itemsize, TransferDirection.HOST_TO_DEVICE
        )
        return self._record(
            CommandType.WRITE_BUFFER, f"fill:{buf.name}", duration,
            {"bytes": buf.dtype.itemsize, "fill": True},
            engine="dma", writes=(buf,), after_ns=after,
        )

    def enqueue_map_buffer(self, buf: Buffer, write: bool = False,
                           wait_for=None) -> tuple[np.ndarray, Event]:
        """Map a buffer into host memory (``clEnqueueMapBuffer``).

        On a discrete device mapping is a DMA in disguise: the whole
        buffer crosses the link, so the event is charged like a read.
        Returns a host copy; pass it to :meth:`enqueue_unmap` (after
        mutating it, if ``write``) to push changes back.
        """
        after = self._check_wait_list(wait_for)
        data = buf._host_read()
        duration = self.device.timing_model.transfer_ns(
            data.nbytes, TransferDirection.DEVICE_TO_HOST
        )
        event = self._record(
            CommandType.READ_BUFFER, f"map:{buf.name}", duration,
            {"bytes": data.nbytes, "map": True, "write": write},
            engine="dma", reads=(buf,), after_ns=after,
        )
        self.transfers.add(
            TransferRecord(
                direction=TransferDirection.DEVICE_TO_HOST,
                nbytes=data.nbytes,
                buffer_name=buf.name,
                start_ns=event.start_ns,
                end_ns=event.end_ns,
            )
        )
        self._mapped[id(data)] = (buf, write)
        return data.reshape(buf.shape), event

    def enqueue_unmap(self, buf: Buffer, mapped: np.ndarray) -> Event:
        """Unmap a region obtained from :meth:`enqueue_map_buffer`.

        Write-mapped regions are transferred back to the device;
        read-only maps unmap for free.
        """
        key = id(mapped.base) if mapped.base is not None else id(mapped)
        entry = self._mapped.pop(key, None) or self._mapped.pop(id(mapped), None)
        if entry is None:
            raise OpenCLError("unmap of a region that was never mapped",
                              code="CL_INVALID_VALUE")
        mapped_buf, write = entry
        if mapped_buf is not buf:
            raise OpenCLError("unmap against the wrong buffer",
                              code="CL_INVALID_MEM_OBJECT")
        if not write:
            return self._record(CommandType.MARKER, f"unmap:{buf.name}",
                                0.0, {"unmap": True})
        nbytes = buf._host_write(np.asarray(mapped).reshape(-1))
        duration = self.device.timing_model.transfer_ns(
            nbytes, TransferDirection.HOST_TO_DEVICE
        )
        event = self._record(
            CommandType.WRITE_BUFFER, f"unmap:{buf.name}", duration,
            {"bytes": nbytes, "unmap": True},
            engine="dma", writes=(buf,),
        )
        self.transfers.add(
            TransferRecord(
                direction=TransferDirection.HOST_TO_DEVICE,
                nbytes=nbytes,
                buffer_name=buf.name,
                start_ns=event.start_ns,
                end_ns=event.end_ns,
            )
        )
        return event

    def enqueue_marker(self, name: str = "marker", wait_for=None) -> Event:
        """Zero-duration marker event."""
        self._check_wait_list(wait_for)
        return self._record(CommandType.MARKER, name, 0.0, {})

    def enqueue_barrier(self) -> Event:
        """Queue barrier (``clEnqueueBarrier``): later commands wait for
        all earlier ones.  In overlap mode this synchronises the DMA
        and compute engines; on the serial queue it is ordering-wise a
        no-op recorded for host-program fidelity."""
        if self.overlap:
            now = max(self._engine_free.values())
            for engine in self._engine_free:
                self._engine_free[engine] = now
        return self._record(CommandType.MARKER, "queue-barrier", 0.0, {})

    def finish(self) -> float:
        """Block until all commands complete; returns the clock (ns).

        Commands execute eagerly in this simulator, so ``finish`` only
        reports the simulated completion time (in overlap mode: the
        later of the two engines).
        """
        if self.overlap:
            now = max(self._engine_free.values())
            for engine in self._engine_free:
                self._engine_free[engine] = now
        return self._clock_ns

    # -- introspection -------------------------------------------------------

    def kernel_time_ns(self) -> float:
        """Total simulated time spent in kernel execution."""
        return sum(
            e.duration_ns for e in self.events
            if e.command_type is CommandType.NDRANGE_KERNEL
        )

    def transfer_time_ns(self) -> float:
        """Total simulated time spent in host<->device transfers."""
        return self.transfers.total_time_ns()
