"""Throughput benchmark harness for the batched greeks workload.

Measures :meth:`repro.engine.PricingEngine.run_greeks` — five engine
pricing passes per option (level-captured base pass plus four
bump-and-reprice passes) — against the scalar baseline it supersedes:
a Python loop calling :func:`repro.finance.greeks.lattice_greeks` once
per option.  The scalar oracle re-prices five trees per option too, so
the speedup isolates what the engine adds (vectorised batch kernels,
chunking, worker fan-out) rather than comparing different amounts of
work.

Every run cross-checks correctness: engine delta/gamma/theta must come
from the same pass as the prices (the harness asserts agreement with
the scalar oracle to ``PARITY_TOL``), and the document records the
worst per-greek deviation.  ``check_throughput_regression`` from
:mod:`~repro.bench.engine_bench` implements the CI gate for the
resulting document — both benchmarks share the document shape.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.faithful_math import EXACT_DOUBLE, MathProfile
from ..core.metrics import nodes_per_option
from ..engine import EngineConfig, PricingEngine
from ..errors import ReproError
from ..finance.greeks import lattice_greeks
from ..finance.lattice import LatticeFamily
from ..finance.market import generate_batch
from ..obs import keys as obs_keys
from .gate import make_envelope, write_benchmark  # noqa: F401  (re-export)

__all__ = [
    "GREEKS_BENCH_SCHEMA",
    "PARITY_TOL",
    "baseline_scalar_greeks",
    "run_greeks_benchmark",
]

#: Schema tag written into every BENCH_greeks.json.
GREEKS_BENCH_SCHEMA = "repro-greeks-bench/v1"

#: Engine-vs-scalar-oracle agreement asserted on every benchmark run.
PARITY_TOL = 1e-9

_GREEK_FIELDS = ("price", "delta", "gamma", "theta", "vega", "rho")


def baseline_scalar_greeks(
    options,
    steps: int,
    family: LatticeFamily = LatticeFamily.CRR,
    bump_vol: float = 1e-3,
    bump_rate: float = 1e-4,
) -> "dict[str, np.ndarray]":
    """The pre-engine greeks path: one scalar lattice run per option.

    Returns one float64 array per field of
    :class:`~repro.finance.greeks.LatticeGreeks`, in input order.
    """
    rows = [lattice_greeks(option, steps, family,
                           bump_vol=bump_vol, bump_rate=bump_rate)
            for option in options]
    return {field: np.array([getattr(row, field) for row in rows])
            for field in _GREEK_FIELDS}


def run_greeks_benchmark(
    options_counts: Sequence[int] = (256, 1024),
    steps: int = 256,
    workers_settings: Sequence[int] = (1, 4),
    kernel: str = "iv_b",
    profile: MathProfile = EXACT_DOUBLE,
    family: LatticeFamily = LatticeFamily.CRR,
    seed: int = 20140324,
    bump_vol: float = 1e-3,
    bump_rate: float = 1e-4,
    backend: str = "numpy",
    tracer=None,
) -> dict:
    """Measure batched-greeks throughput against the scalar oracle.

    For each batch size and ``workers`` setting the harness times both
    greeks schedules — the five-pass one (base pass plus four bump
    passes, five engine runs' worth of scheduling) and the fused one
    (every variant in a single run) — asserting per-greek agreement
    with the oracle to :data:`PARITY_TOL` and *bitwise* agreement
    between the two schedules.  The fused row carries
    ``fused_speedup_vs_five_pass``, the headline the fusion work is
    gated on; rows are distinguished by their ``fused_greeks`` stats
    flag, which the regression gate folds into its matching key.
    Returns a JSON-ready document with the same shape as
    :func:`~repro.bench.engine_bench.run_benchmark` (``config`` /
    ``results[*].runs`` with :data:`repro.obs.keys.STATS_KEYS` rows
    plus ``speedup_vs_baseline``), so
    :func:`~repro.bench.engine_bench.check_throughput_regression`
    gates both benchmarks.
    """
    if kernel not in ("iv_a", "iv_b", "reference"):
        raise ReproError(f"unknown kernel {kernel!r}")
    results = []
    for n_options in options_counts:
        batch = list(generate_batch(n_options=n_options, seed=seed).options)

        start = time.perf_counter()
        oracle = baseline_scalar_greeks(batch, steps, family,
                                        bump_vol=bump_vol,
                                        bump_rate=bump_rate)
        baseline_wall = time.perf_counter() - start
        # five pricing passes per option, leaves included
        tree_nodes = 5 * n_options * (nodes_per_option(steps) + steps + 1)

        runs = []
        parity: "dict[str, float]" = {}
        for workers in workers_settings:
            by_schedule = {}
            for fused in (False, True):
                config = EngineConfig(workers=workers, backend=backend,
                                      fused_greeks=fused)
                with PricingEngine(kernel=kernel, profile=profile,
                                   family=family, config=config,
                                   tracer=tracer) as engine:
                    result = engine.run_greeks(batch, steps,
                                               bump_vol=bump_vol,
                                               bump_rate=bump_rate)
                engine_fields = {
                    "price": result.prices, "delta": result.delta,
                    "gamma": result.gamma, "theta": result.theta,
                    "vega": result.vega, "rho": result.rho,
                }
                for field in _GREEK_FIELDS:
                    diff = float(np.max(np.abs(engine_fields[field]
                                               - oracle[field])))
                    parity[field] = max(parity.get(field, 0.0), diff)
                    if diff > PARITY_TOL:
                        raise ReproError(
                            f"engine greeks (workers={workers}, "
                            f"fused={fused}) disagree with the scalar "
                            f"lattice_greeks oracle on {field}: "
                            f"max abs diff {diff:.3e} > {PARITY_TOL:g}")
                by_schedule[fused] = (result, engine_fields)

            five_fields = by_schedule[False][1]
            for field in _GREEK_FIELDS:
                if not np.array_equal(by_schedule[True][1][field],
                                      five_fields[field]):
                    raise ReproError(
                        f"fused greeks (workers={workers}) are not "
                        f"bit-identical to the five-pass schedule on "
                        f"{field}")

            five_wall = by_schedule[False][0].stats.wall_time_s
            for fused in (False, True):
                stats = by_schedule[fused][0].stats.as_dict()
                stats["speedup_vs_baseline"] = (
                    baseline_wall / stats["wall_time_s"]
                )
                if fused:
                    stats["fused_speedup_vs_five_pass"] = (
                        five_wall / stats["wall_time_s"]
                    )
                runs.append(stats)

        results.append({
            "options": n_options,
            "baseline": {
                "label": "scalar lattice_greeks loop",
                "wall_time_s": baseline_wall,
                "options_per_second": n_options / baseline_wall,
                "tree_nodes_per_second": tree_nodes / baseline_wall,
            },
            "parity": {
                "tolerance": PARITY_TOL,
                "max_abs_diff": parity,
            },
            "runs": runs,
        })

    return make_envelope(
        GREEKS_BENCH_SCHEMA,
        obs_keys.STATS_SCHEMA,
        config={
            "kernel": kernel,
            "profile": profile.name,
            "family": family.value,
            "steps": steps,
            "seed": seed,
            "bump_vol": bump_vol,
            "bump_rate": bump_rate,
            "backend": backend,
        },
        results=results,
    )
