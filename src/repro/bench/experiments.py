"""One driver per experiment id of DESIGN.md's index (E1..E15).

Each function reproduces one table, figure or in-text result of the
paper and returns a structured result object carrying both the
reproduced values and the published targets, plus a ``rendered`` text
table.  The pytest-benchmark modules under ``benchmarks/`` are thin
wrappers over these drivers, so the same code also backs the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core import (
    ALTERA_13_0_DOUBLE,
    EXACT_DOUBLE,
    EXACT_SINGLE,
    BinomialAccelerator,
    HostProgramA,
    HostProgramB,
    PerformanceRow,
    ReadbackMode,
    kernel_a_estimate,
    kernel_a_ir,
    kernel_b_estimate,
    kernel_b_ir,
    nodes_per_option,
    reference_estimate,
    row_from_estimate,
)
from ..core.sweep import fit_power_budget, frequency_scaling
from ..engine import EngineConfig, PricingEngine
from ..devices import (
    cpu_compute_model,
    fpga_compute_model,
    fpga_device,
    gpu_compute_model,
)
from ..devices.calibration import FPGA_PIPELINE_DERATE
from ..finance import (
    Option,
    classify_rmse,
    generate_batch,
    generate_curve_scenario,
    implied_vol_curve,
    rmse,
)
from ..api import price
from ..hls import KERNEL_A_OPTIONS, KERNEL_B_OPTIONS, compile_kernel
from . import published
from .tables import render_comparison, render_table

__all__ = [
    "Table1Result",
    "table1",
    "Table2Result",
    "table2",
    "SaturationResult",
    "saturation_sweep",
    "ReadbackAblationResult",
    "readback_ablation",
    "AccuracyResult",
    "accuracy_experiment",
    "EnergyWorkaroundResult",
    "energy_workarounds",
    "UseCaseResult",
    "volatility_curve_usecase",
    "PortabilityResult",
    "portability_study",
    "PrecisionAblationResult",
    "precision_ablation",
    "BoardSelectionResult",
    "board_selection",
]


# --------------------------------------------------------------------------
# E1: Table I — resource usage
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Result:
    """Reproduced Table I for both kernels."""

    compiled: dict
    rendered: str


def table1() -> Table1Result:
    """Compile both kernel IRs and compare against the printed Table I."""
    compiled = {
        "iv_a": compile_kernel(kernel_a_ir(), KERNEL_A_OPTIONS),
        "iv_b": compile_kernel(kernel_b_ir(published.PAPER_STEPS), KERNEL_B_OPTIONS),
    }
    blocks = []
    for key, ck in compiled.items():
        paper = published.TABLE1[key]
        metrics = (
            "logic utilization", "registers", "memory bits",
            "M9K blocks", "DSP (18-bit)", "clock MHz", "power W",
        )
        paper_vals = {
            "logic utilization": paper.logic_utilization,
            "registers": paper.registers,
            "memory bits": paper.memory_bits,
            "M9K blocks": paper.m9k_blocks,
            "DSP (18-bit)": paper.dsp_18bit,
            "clock MHz": paper.clock_mhz,
            "power W": paper.power_w,
        }
        r = ck.resources
        measured_vals = {
            "logic utilization": round(r.logic_utilization, 3),
            "registers": r.registers,
            "memory bits": r.memory_bits,
            "M9K blocks": r.m9k_blocks,
            "DSP (18-bit)": r.dsp_18bit,
            "clock MHz": round(ck.fit.fmax_mhz, 2),
            "power W": round(ck.power.total_w, 1),
        }
        blocks.append(
            render_comparison(
                f"Table I — kernel {paper.kernel} ({ck.options.describe()})",
                metrics, paper_vals, measured_vals,
            )
        )
    return Table1Result(compiled=compiled, rendered="\n\n".join(blocks))


# --------------------------------------------------------------------------
# E2: Table II — performances
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Result:
    """Reproduced Table II: rows plus the published targets."""

    rows: tuple
    published_rows: tuple
    rendered: str


def _engine_prices(kernel: str, options: Sequence[Option], steps: int,
                   profile, workers: int = 1) -> np.ndarray:
    """Price one configuration through the batched engine.

    Bit-identical to calling the kernel simulator directly (the engine
    only restructures the schedule), but chunked into cache-sized
    tiles and optionally fanned over worker processes.
    """
    with PricingEngine(kernel=kernel, profile=profile,
                       config=EngineConfig(workers=workers)) as engine:
        return engine.price(options, steps)


def _accuracy_rmse(kind: str, options: Sequence[Option], steps: int,
                   reference: np.ndarray, workers: int = 1) -> float:
    """Measured RMSE of one configuration against the double reference."""
    if kind == "iv_a_fpga" or kind == "iv_a_gpu":
        candidate = _engine_prices("iv_a", options, steps, EXACT_DOUBLE, workers)
    elif kind == "iv_b_fpga":
        candidate = _engine_prices("iv_b", options, steps, ALTERA_13_0_DOUBLE,
                                   workers)
    elif kind == "iv_b_gpu_double":
        candidate = _engine_prices("iv_b", options, steps, EXACT_DOUBLE, workers)
    elif kind == "iv_b_gpu_single":
        candidate = _engine_prices("iv_b", options, steps, EXACT_SINGLE, workers)
    elif kind == "ref_single":
        candidate = price(options, steps=steps, precision="single",
                          workers=workers).prices
    else:  # ref_double — the reference itself
        candidate = reference
    return rmse(reference, candidate)


def table2(accuracy_options: int = 200, steps: int = published.PAPER_STEPS,
           seed: int = 20140324, workers: int = 1) -> Table2Result:
    """Regenerate every Table II column (plus the literature rows).

    Throughput/energy come from the calibrated performance models;
    RMSE from actually pricing ``accuracy_options`` synthetic options
    at full tree depth with each configuration's exact arithmetic
    (scheduled through the batched engine; ``workers > 1`` fans the
    chunks over processes without changing a bit of the output).
    """
    batch = generate_batch(n_options=accuracy_options, seed=seed).options
    reference = price(batch, steps=steps, workers=workers).prices

    configs = (
        ("Kernel IV.A", "FPGA (DE4)", "double", "iv_a_fpga",
         kernel_a_estimate(fpga_compute_model("iv_a"), steps)),
        ("Kernel IV.A", "GPU (GTX660 Ti)", "double", "iv_a_gpu",
         kernel_a_estimate(gpu_compute_model("iv_a"), steps)),
        ("Kernel IV.B", "FPGA (DE4)", "double", "iv_b_fpga",
         kernel_b_estimate(fpga_compute_model("iv_b"), steps)),
        ("Kernel IV.B", "GPU (GTX660 Ti)", "single", "iv_b_gpu_single",
         kernel_b_estimate(gpu_compute_model("iv_b", "single"), steps)),
        ("Kernel IV.B", "GPU (GTX660 Ti)", "double", "iv_b_gpu_double",
         kernel_b_estimate(gpu_compute_model("iv_b", "double"), steps)),
        ("Reference sw", "Xeon X5450 (1 core)", "single", "ref_single",
         reference_estimate(cpu_compute_model("single"), steps)),
        ("Reference sw", "Xeon X5450 (1 core)", "double", "ref_double",
         reference_estimate(cpu_compute_model("double"), steps)),
    )

    rows = []
    for label, platform, precision, kind, estimate in configs:
        value = _accuracy_rmse(kind, batch, steps, reference, workers)
        rows.append(row_from_estimate(label, platform, precision, estimate, value))

    # literature rows are carried as printed
    for col in published.TABLE2[-2:]:
        rows.append(
            PerformanceRow(
                label=col.label, platform=col.platform, precision=col.precision,
                options_per_second=col.options_per_second,
                rmse_display=col.rmse_display,
                options_per_joule=col.options_per_joule,
                tree_nodes_per_second=col.tree_nodes_per_second,
            )
        )

    headers = ("configuration", "platform", "prec",
               "options/s", "(paper)", "RMSE", "(paper)",
               "options/J", "(paper)", "nodes/s", "(paper)")
    table_rows = []
    for row, col in zip(rows, published.TABLE2):
        f = row.formatted()
        table_rows.append((
            f["label"], f["platform"], f["precision"],
            f["options/s"], f"{col.options_per_second:,.1f}",
            f["RMSE"], col.rmse_display,
            f["options/J"],
            "N/A" if col.options_per_joule is None else f"{col.options_per_joule:.2f}",
            f["tree nodes/s"], f"{col.tree_nodes_per_second:.3g}",
        ))
    rendered = render_table(headers, table_rows,
                            title=f"Table II (N={steps}, accuracy batch="
                                  f"{accuracy_options} options)")
    return Table2Result(rows=tuple(rows), published_rows=published.TABLE2,
                        rendered=rendered)


# --------------------------------------------------------------------------
# E6: device saturation sweep
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SaturationResult:
    """Effective throughput vs workload size for the main configs."""

    workloads: tuple
    series: dict
    rendered: str


def saturation_sweep(
    workloads: Sequence[int] = (100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000),
    steps: int = published.PAPER_STEPS,
) -> SaturationResult:
    """Reproduce the Section V.C saturation behaviour.

    The FPGA configurations reach ~95% of peak at ~1e5 options and
    kernel IV.B on the GPU only at ~1e6, exactly as the paper states.
    """
    estimates = {
        "IV.B FPGA": kernel_b_estimate(fpga_compute_model("iv_b"), steps),
        "IV.B GPU double": kernel_b_estimate(gpu_compute_model("iv_b"), steps),
        "IV.B GPU single": kernel_b_estimate(
            gpu_compute_model("iv_b", "single"), steps),
        "Reference sw": reference_estimate(cpu_compute_model("double"), steps),
    }
    series = {
        name: tuple(est.effective_rate(n) for n in workloads)
        for name, est in estimates.items()
    }
    rows = [
        (f"{n:,}",) + tuple(f"{series[name][i]:,.1f}" for name in estimates)
        for i, n in enumerate(workloads)
    ]
    rendered = render_table(
        ("options",) + tuple(estimates), rows,
        title="Effective options/s vs workload size (saturation, E6)",
    )
    from .figures import ascii_plot

    rendered += "\n\n" + ascii_plot(
        list(workloads), series, x_label="options priced",
        y_label="options/s",
        title="Saturation curves (knees at ~1e5 FPGA, ~1e6 GPU)",
    )
    return SaturationResult(workloads=tuple(workloads), series=series,
                            rendered=rendered)


# --------------------------------------------------------------------------
# E7: kernel IV.A readback ablation
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ReadbackAblationResult:
    """Full-buffer vs result-only readback on both platforms."""

    gpu_full: float
    gpu_result_only: float
    fpga_full: float
    fpga_result_only: float
    speedup_gpu: float
    rendered: str


def readback_ablation(steps: int = published.PAPER_STEPS) -> ReadbackAblationResult:
    """Reproduce the 14x modified-kernel result of Section V.C."""
    gpu = gpu_compute_model("iv_a")
    fpga = fpga_compute_model("iv_a")
    gpu_full = kernel_a_estimate(gpu, steps, ReadbackMode.FULL_BUFFER)
    gpu_mod = kernel_a_estimate(gpu, steps, ReadbackMode.RESULT_ONLY)
    fpga_full = kernel_a_estimate(fpga, steps, ReadbackMode.FULL_BUFFER)
    fpga_mod = kernel_a_estimate(fpga, steps, ReadbackMode.RESULT_ONLY)

    speedup = gpu_mod.options_per_second / gpu_full.options_per_second
    rendered = render_table(
        ("platform", "readback", "options/s", "paper"),
        (
            ("GPU", "full buffer", f"{gpu_full.options_per_second:.1f}",
             f"{published.KERNEL_A_GPU_ORIGINAL_OPTIONS_PER_S}"),
            ("GPU", "result only", f"{gpu_mod.options_per_second:.1f}",
             f"{published.KERNEL_A_GPU_MODIFIED_OPTIONS_PER_S}"),
            ("GPU", "speedup", f"{speedup:.1f}x", "14x"),
            ("FPGA", "full buffer", f"{fpga_full.options_per_second:.1f}", "25"),
            ("FPGA", "result only", f"{fpga_mod.options_per_second:.1f}",
             "(same order expected, V.C)"),
        ),
        title="Kernel IV.A readback ablation (E7)",
    )
    return ReadbackAblationResult(
        gpu_full=gpu_full.options_per_second,
        gpu_result_only=gpu_mod.options_per_second,
        fpga_full=fpga_full.options_per_second,
        fpga_result_only=fpga_mod.options_per_second,
        speedup_gpu=speedup,
        rendered=rendered,
    )


# --------------------------------------------------------------------------
# E8: Power-operator accuracy
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AccuracyResult:
    """Measured RMSEs of every math configuration."""

    rmses: dict
    classes: dict
    rendered: str


def accuracy_experiment(n_options: int = 500,
                        steps: int = published.PAPER_STEPS,
                        seed: int = 7, workers: int = 1) -> AccuracyResult:
    """Reproduce the accuracy story: flawed pow vs exact vs fp32.

    .. deprecated:: 1.0
        The bespoke accuracy harness is superseded by the resumable
        scenario-sweep layer: ``repro sweep run --spec steps-precision``
        (or :func:`repro.sweep.steps_precision_spec` +
        :class:`repro.sweep.SweepRunner`) runs the same steps × precision
        grid with persistence, crash-safe resume and frontier reporting.
        Only the flawed-pow column (a :class:`MathProfile`, not a request
        precision) has no sweep-axis equivalent yet.  Scheduled for
        removal in repro 2.0.
    """
    import warnings

    warnings.warn(
        "accuracy_experiment() is deprecated and will be removed in "
        "repro 2.0; use the sweep layer instead: repro sweep run "
        "--spec steps-precision (repro.sweep.steps_precision_spec / "
        "SweepRunner)",
        DeprecationWarning, stacklevel=2)
    batch = generate_batch(n_options=n_options, seed=seed).options
    reference = price(batch, steps=steps, workers=workers).prices
    rmses = {
        "IV.B FPGA double (flawed pow)": rmse(
            reference, _engine_prices("iv_b", batch, steps, ALTERA_13_0_DOUBLE,
                                      workers)),
        "IV.B GPU double (exact pow)": rmse(
            reference, _engine_prices("iv_b", batch, steps, EXACT_DOUBLE,
                                      workers)),
        "IV.B GPU single": rmse(
            reference, _engine_prices("iv_b", batch, steps, EXACT_SINGLE,
                                      workers)),
        "IV.A (host leaves, exact)": rmse(
            reference, _engine_prices("iv_a", batch, steps, EXACT_DOUBLE,
                                      workers)),
        "Reference single": rmse(
            reference, price(batch, steps=steps, precision="single",
                             workers=workers).prices),
    }
    classes = {k: classify_rmse(v) for k, v in rmses.items()}
    paper_classes = {
        "IV.B FPGA double (flawed pow)": "~1e-3",
        "IV.B GPU double (exact pow)": "0",
        "IV.B GPU single": "0 (printed; fp32 rounding is ~1e-3)",
        "IV.A (host leaves, exact)": "0 per V.C text (~1e-3 printed; see EXPERIMENTS.md)",
        "Reference single": "~1e-3",
    }
    rows = [(k, f"{v:.2e}", classes[k], paper_classes[k]) for k, v in rmses.items()]
    rendered = render_table(
        ("configuration", "RMSE", "class", "paper"),
        rows, title=f"Power-operator accuracy (E8, N={steps}, {n_options} options)",
    )
    return AccuracyResult(rmses=rmses, classes=classes, rendered=rendered)


# --------------------------------------------------------------------------
# E9: energy workarounds
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EnergyWorkaroundResult:
    """Clock scaling of kernel IV.B toward the 10 W budget."""

    points: tuple
    budget_point: object
    rendered: str


def energy_workarounds(steps: int = published.PAPER_STEPS) -> EnergyWorkaroundResult:
    """Quantify Section V.C's workarounds for the 7 W overshoot."""
    compiled = compile_kernel(kernel_b_ir(steps), KERNEL_B_OPTIONS)
    points = frequency_scaling(compiled, steps,
                               pipeline_derate=FPGA_PIPELINE_DERATE)
    budget = fit_power_budget(compiled, published.PAPER_POWER_BUDGET_W, steps,
                              pipeline_derate=FPGA_PIPELINE_DERATE)
    rows = [
        (f"{p.clock_mhz:.1f}", f"{p.power_w:.2f}", f"{p.options_per_second:,.0f}",
         f"{p.options_per_joule:.1f}",
         "yes" if p.options_per_second >= published.PAPER_USE_CASE_OPTIONS_PER_S
         else "no",
         "yes" if p.power_w <= published.PAPER_POWER_BUDGET_W else "no")
        for p in points + [budget]
    ]
    rendered = render_table(
        ("clock MHz", "power W", "options/s", "options/J",
         ">=2000 opt/s", "<=10 W"),
        rows, title="Kernel IV.B clock scaling toward the 10 W budget (E9)",
    )
    return EnergyWorkaroundResult(points=tuple(points), budget_point=budget,
                                  rendered=rendered)


# --------------------------------------------------------------------------
# E10: the volatility-curve use case
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class UseCaseResult:
    """End-to-end implied-volatility-curve scenario on the accelerator."""

    max_vol_error: float
    total_engine_evaluations: int
    modeled_time_s: float
    modeled_power_w: float
    meets_throughput: bool
    rendered: str


def volatility_curve_usecase(
    n_strikes: int = 11,
    steps: int = 256,
    curve_options: int = published.PAPER_USE_CASE_OPTIONS_PER_S,
) -> UseCaseResult:
    """Recover a volatility smile with the FPGA accelerator (E10).

    Implied vols are solved against the accelerator's own pricing
    engine (flawed pow included); the time/power verdict for a
    2000-option curve comes from the calibrated performance model at
    the paper's full N=1024.
    """
    scenario = generate_curve_scenario(n_strikes=n_strikes, steps=steps,
                                       pricing_steps=steps)
    accelerator = BinomialAccelerator(platform="fpga", kernel="iv_b",
                                      steps=steps)

    def engine(option):
        return float(price([option], steps=steps,
                           device=accelerator).prices[0])

    points = implied_vol_curve(scenario.base_option, scenario.strikes,
                               scenario.market_prices, price_fn=engine,
                               steps=steps)
    errors = np.abs(np.array([p.implied_vol for p in points]) - scenario.true_vols)
    evaluations = sum(p.evaluations for p in points)

    # full-size throughput verdict for one 2000-option curve, taken at
    # steady state: the paper samples "after device saturation" and the
    # trader streams curves through a warm pipeline
    full = BinomialAccelerator(platform="fpga", kernel="iv_b",
                               steps=published.PAPER_STEPS)
    estimate = full.performance()
    curve_time = estimate.steady_state_time_for(curve_options)
    rendered = render_table(
        ("metric", "value", "target"),
        (
            ("max implied-vol error", f"{errors.max():.2e}", "smile recovered"),
            ("engine evaluations", f"{evaluations}", "~dozens per strike"),
            ("2000-option curve time", f"{curve_time:.3f} s", "< 1 s"),
            ("accelerator power", f"{estimate.power_w:.1f} W",
             f"{published.PAPER_POWER_BUDGET_W:.0f} W budget (paper: ~17 W, "
             "'less than 20W' abstract)"),
        ),
        title="Volatility-curve use case (E10)",
    )
    return UseCaseResult(
        max_vol_error=float(errors.max()),
        total_engine_evaluations=int(evaluations),
        modeled_time_s=float(curve_time),
        modeled_power_w=float(estimate.power_w),
        meets_throughput=curve_time < 1.0,
        rendered=rendered,
    )


# --------------------------------------------------------------------------
# E11: future-work portability study (paper conclusion, refs [16], [17])
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PortabilityRow:
    """One OpenCL target in the portability study."""

    target: str
    options_per_second: float
    options_per_joule: float
    power_w: float
    meets_use_case: bool
    projected: bool


@dataclass(frozen=True)
class PortabilityResult:
    """Kernel IV.B projected across every OpenCL target."""

    rows: tuple
    rendered: str

    def row(self, fragment: str) -> PortabilityRow:
        """First row whose target name contains ``fragment``."""
        for entry in self.rows:
            if fragment.lower() in entry.target.lower():
                return entry
        raise KeyError(fragment)


def portability_study(steps: int = published.PAPER_STEPS,
                      precision: str = "double") -> PortabilityResult:
    """Run the study the paper's conclusion announces (E11).

    Kernel IV.B's steady-state throughput and energy efficiency across
    the measured targets (DE4, GTX660 Ti, Xeon reference) and the two
    *projected* future-work targets (TI KeyStone C6678 DSP, ARM
    Mali-T604 embedded GPU).  Projected rows carry no paper ground
    truth; see :mod:`repro.devices.embedded`.
    """
    from ..devices import MALI_T604, TI_C6678, embedded_compute_model

    targets = (
        ("Terasic DE4 (Stratix IV)", kernel_b_estimate(
            fpga_compute_model("iv_b"), steps), False),
        ("NVIDIA GTX660 Ti", kernel_b_estimate(
            gpu_compute_model("iv_b", precision), steps), False),
        ("Xeon X5450 (reference sw)", reference_estimate(
            cpu_compute_model(precision), steps), False),
        ("TI C6678 DSP (projected)", kernel_b_estimate(
            embedded_compute_model(TI_C6678, "iv_b", precision), steps), True),
        ("ARM Mali-T604 (projected)", kernel_b_estimate(
            embedded_compute_model(MALI_T604, "iv_b", precision), steps), True),
    )
    rows = tuple(
        PortabilityRow(
            target=name,
            options_per_second=est.options_per_second,
            options_per_joule=est.options_per_joule,
            power_w=est.power_w,
            meets_use_case=(est.options_per_second
                            >= published.PAPER_USE_CASE_OPTIONS_PER_S),
            projected=projected,
        )
        for name, est, projected in targets
    )
    table_rows = [
        (r.target, f"{r.options_per_second:,.0f}", f"{r.power_w:.1f}",
         f"{r.options_per_joule:.1f}",
         "yes" if r.meets_use_case else "no",
         "projection" if r.projected else "calibrated")
        for r in rows
    ]
    rendered = render_table(
        ("target", "options/s", "power W", "options/J",
         ">=2000 opt/s", "status"),
        table_rows,
        title=f"Kernel IV.B portability study (E11, {precision}, N={steps})",
    )
    return PortabilityResult(rows=rows, rendered=rendered)


# --------------------------------------------------------------------------
# E12: single-precision FPGA ablation
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PrecisionAblationResult:
    """Double vs single precision kernel IV.B on the Stratix IV."""

    double_point: object
    single_point: object
    single_options: object
    rmse_double: float
    rmse_single: float
    rendered: str


def precision_ablation(steps: int = published.PAPER_STEPS,
                       accuracy_options: int = 100,
                       seed: int = 17) -> PrecisionAblationResult:
    """Quantify the related-work trade-off the paper alludes to (E12):

    "[other binomial accelerators] can achieve better acceleration
    factors ... when restrictions on accuracy are either alleviated
    (fixed precision implementations) or strengthened".

    Compiles kernel IV.B in single precision, re-explores the
    parallelisation space that now fits, and prices an accuracy batch
    in both precisions.

    .. deprecated:: 1.0
        The precision half of this harness is superseded by the
        resumable scenario-sweep layer: ``repro sweep run --spec
        steps-precision`` crosses precision × depth × kernel with
        persistence, crash-safe resume and frontier reporting (the HLS
        refit stays in :mod:`repro.core.sweep`).  Scheduled for
        removal in repro 2.0.
    """
    import warnings

    warnings.warn(
        "precision_ablation() is deprecated and will be removed in "
        "repro 2.0; use the sweep layer instead: repro sweep run "
        "--spec steps-precision (repro.sweep.steps_precision_spec / "
        "SweepRunner)",
        DeprecationWarning, stacklevel=2)
    from ..core.sweep import explore_design_space
    from ..devices.calibration import FPGA_PIPELINE_DERATE

    double_ck = compile_kernel(kernel_b_ir(steps), KERNEL_B_OPTIONS)
    sp_points = explore_design_space(
        kernel_b_ir(steps, precision="sp"), steps=steps,
        simd_widths=(4, 8, 16), compute_units=(1,), unrolls=(2, 4),
        pipeline_derate=FPGA_PIPELINE_DERATE,
    )
    best_sp = next(p for p in sp_points if p.fits)

    batch = generate_batch(n_options=accuracy_options, seed=seed).options
    reference = price(batch, steps=steps).prices
    rmse_double = rmse(
        reference, _engine_prices("iv_b", batch, steps, ALTERA_13_0_DOUBLE))
    rmse_single = rmse(
        reference, _engine_prices("iv_b", batch, steps, EXACT_SINGLE))

    nodes = nodes_per_option(steps)
    double_rate = (double_ck.fmax_hz * double_ck.parallel_lanes
                   * FPGA_PIPELINE_DERATE / nodes)
    rows = [
        ("double (paper)", double_ck.options.describe(),
         f"{double_ck.resources.logic_utilization:.0%}",
         f"{double_ck.fit.fmax_mhz:.0f}", f"{double_ck.power_w:.1f}",
         f"{double_rate:,.0f}", classify_rmse(rmse_double)),
        ("single (ablation)", best_sp.options.describe(),
         f"{best_sp.compiled.resources.logic_utilization:.0%}",
         f"{best_sp.compiled.fit.fmax_mhz:.0f}",
         f"{best_sp.compiled.power_w:.1f}",
         f"{best_sp.options_per_second:,.0f}", classify_rmse(rmse_single)),
    ]
    rendered = render_table(
        ("precision", "parallelisation", "logic", "MHz", "W",
         "options/s", "RMSE"),
        rows, title=f"Kernel IV.B precision ablation (E12, N={steps})",
    )
    return PrecisionAblationResult(
        double_point=double_ck,
        single_point=best_sp,
        single_options=best_sp.options,
        rmse_double=rmse_double,
        rmse_single=rmse_single,
        rendered=rendered,
    )


# --------------------------------------------------------------------------
# E15: board selection
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BoardSelectionResult:
    """Best fitting kernel IV.B point per candidate FPGA part."""

    unconstrained: tuple
    budgeted: tuple
    rendered: str


def board_selection(steps: int = published.PAPER_STEPS) -> BoardSelectionResult:
    """Section V.C's third workaround: re-target a smaller board (E15)."""
    from ..core.sweep import select_board
    from ..hls import EP4SGX230, EP4SGX530

    parts = (EP4SGX530, EP4SGX230)
    unconstrained = tuple(select_board(
        kernel_b_ir(steps), parts, steps=steps,
        pipeline_derate=FPGA_PIPELINE_DERATE))
    budgeted = tuple(select_board(
        kernel_b_ir(steps), parts, steps=steps,
        power_budget_w=published.PAPER_POWER_BUDGET_W,
        pipeline_derate=FPGA_PIPELINE_DERATE))

    rows = []
    for label, candidates in (("unconstrained", unconstrained),
                              (f"<= {published.PAPER_POWER_BUDGET_W:.0f} W",
                               budgeted)):
        for c in candidates:
            rows.append((
                label, c.part.name,
                c.best.label if c.feasible else "-",
                f"{c.options_per_second:,.0f}" if c.feasible else "-",
                f"{c.power_w:.1f}" if c.feasible else "-",
            ))
    rendered = render_table(
        ("constraint", "part", "best point", "options/s", "power W"),
        rows, title="Board selection (E15)")
    return BoardSelectionResult(unconstrained=unconstrained,
                                budgeted=budgeted, rendered=rendered)
