"""Plain-text table rendering for the experiment harness.

Every bench prints a paper-vs-reproduced table; this module owns the
column alignment so the benches stay declarative.  No third-party
table library is used (the environment is offline by design).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["render_table", "render_comparison", "format_ratio"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def line(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def format_ratio(measured: float, paper: float) -> str:
    """``measured/paper`` as a compact ratio cell."""
    if paper == 0:
        return "n/a"
    return f"{measured / paper:.2f}x"


def render_comparison(
    title: str,
    metric_names: Sequence[str],
    paper_values: Mapping[str, object],
    measured_values: Mapping[str, object],
) -> str:
    """Two-column paper-vs-measured table with ratios where numeric."""
    rows = []
    for name in metric_names:
        paper = paper_values.get(name, "")
        measured = measured_values.get(name, "")
        ratio = ""
        if isinstance(paper, (int, float)) and isinstance(measured, (int, float)) \
                and paper:
            ratio = format_ratio(float(measured), float(paper))
        rows.append((name, paper, measured, ratio))
    return render_table(("metric", "paper", "reproduced", "ratio"), rows, title)
