"""Experiment harness: published targets, drivers, table rendering.

``repro.bench.experiments`` has one driver per experiment id of
DESIGN.md; ``repro.bench.published`` carries the paper's printed
numbers; ``repro.bench.tables`` renders paper-vs-reproduced tables.
"""

from . import published
from .experiments import (
    AccuracyResult,
    EnergyWorkaroundResult,
    PortabilityResult,
    PrecisionAblationResult,
    ReadbackAblationResult,
    SaturationResult,
    Table1Result,
    Table2Result,
    UseCaseResult,
    accuracy_experiment,
    energy_workarounds,
    portability_study,
    precision_ablation,
    readback_ablation,
    saturation_sweep,
    table1,
    table2,
    volatility_curve_usecase,
)
from .engine_bench import (
    BENCH_SCHEMA,
    run_benchmark,
)
from .gate import (
    BENCH_ENVELOPE_SCHEMA,
    check_throughput_regression,
    host_info,
    load_benchmark,
    make_envelope,
    write_benchmark,
)
from .greeks_bench import (
    GREEKS_BENCH_SCHEMA,
    baseline_scalar_greeks,
    run_greeks_benchmark,
)
from .methodology import (
    CRR_BINOMIAL_MODEL,
    AcceleratorBenchmark,
    PricingModel,
    PricingProblem,
    Solution,
    SolutionEvaluation,
)
from .figures import ascii_plot
from .report import REPORT_SECTIONS, ReportSection, generate_report
from .service_bench import (
    SERVE_BENCH_SCHEMA,
    SERVICE_BENCH_SCHEMA,
    run_serve_benchmark,
    run_service_benchmark,
)
from .stream_bench import (
    STREAM_BENCH_SCHEMA,
    run_stream_benchmark,
)
from .tables import format_ratio, render_comparison, render_table

__all__ = [
    "published",
    "table1",
    "Table1Result",
    "table2",
    "Table2Result",
    "saturation_sweep",
    "SaturationResult",
    "readback_ablation",
    "ReadbackAblationResult",
    "accuracy_experiment",
    "AccuracyResult",
    "energy_workarounds",
    "EnergyWorkaroundResult",
    "volatility_curve_usecase",
    "UseCaseResult",
    "portability_study",
    "PortabilityResult",
    "precision_ablation",
    "PrecisionAblationResult",
    "AcceleratorBenchmark",
    "PricingProblem",
    "PricingModel",
    "Solution",
    "SolutionEvaluation",
    "CRR_BINOMIAL_MODEL",
    "render_table",
    "render_comparison",
    "format_ratio",
    "ascii_plot",
    "generate_report",
    "ReportSection",
    "REPORT_SECTIONS",
    "BENCH_SCHEMA",
    "BENCH_ENVELOPE_SCHEMA",
    "run_benchmark",
    "write_benchmark",
    "check_throughput_regression",
    "host_info",
    "load_benchmark",
    "make_envelope",
    "GREEKS_BENCH_SCHEMA",
    "baseline_scalar_greeks",
    "run_greeks_benchmark",
    "SERVE_BENCH_SCHEMA",
    "SERVICE_BENCH_SCHEMA",
    "run_serve_benchmark",
    "run_service_benchmark",
    "STREAM_BENCH_SCHEMA",
    "run_stream_benchmark",
]
