"""Benchmark harness for the streaming risk loop (tick-to-risk).

Measures the workload shape the batch benches cannot: a live position
book revalued incrementally as market data ticks.  Per instrument
count:

* **tick-to-risk latency** — p50/p99/p99.9 from a materialised tick's
  arrival to the publication of the aggregate covering it;
* **revaluation throughput** — instruments repriced per second of
  stream wall time (the ``options_per_second`` the regression gate
  compares);
* **bitwise parity** — sampled published aggregates (always including
  the final one) are asserted bitwise-equal to
  :func:`~repro.stream.full_repricing_oracle` repricing the whole
  book from scratch, and the entire aggregate stream is asserted
  bitwise-identical under every fault seed (transient engine faults
  heal on retry without moving a ULP) and across an immediate replay
  (same seed, fresh book and service);
* **tolerance savings** — the same stream through a tolerance-gated
  book, recording suppressed ticks and saved revaluations.

The document mirrors ``BENCH_service.json``: the regression gate
(:func:`~repro.bench.engine_bench.check_throughput_regression`)
matches runs on ``(options, workers)`` and compares
``options_per_second``, so the frozen
``benchmarks/BENCH_stream.quick.json`` plugs into the same CI
machinery as the engine, greeks, service and serve baselines.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..engine.faults import FaultPlan
from ..errors import ReproError
from ..finance.lattice import LatticeFamily
from ..finance.market import generate_batch
from ..obs import keys as obs_keys
from ..service import PricingService, ServiceConfig
from ..stream import (
    Position,
    PositionBook,
    StreamConfig,
    StreamRunner,
    SyntheticTickSource,
    Tolerance,
    full_repricing_oracle,
)
from .gate import make_envelope, write_benchmark  # noqa: F401  (re-export)

__all__ = [
    "STREAM_BENCH_SCHEMA",
    "run_stream_benchmark",
]

#: Schema tag written into every BENCH_stream.json.
STREAM_BENCH_SCHEMA = "repro-stream-bench/v1"

#: Fault seeds every full bench run must hold bitwise parity under
#: (the same seeds the engine fault-injection CI job uses).
DEFAULT_FAULT_SEEDS = (101, 202, 303)


def _build_book(n_instruments: int, steps: int, seed: int,
                tolerances: "dict[str, Tolerance] | None" = None,
                ) -> PositionBook:
    """A deterministic book: generated contracts, seeded quantities."""
    options = generate_batch(n_options=n_instruments, seed=seed).options
    rng = np.random.default_rng(seed + 1)
    quantities = rng.uniform(1.0, 10.0, size=n_instruments)
    signs = np.where(rng.random(n_instruments) < 0.25, -1.0, 1.0)
    book = PositionBook(tolerances)
    for index, option in enumerate(options):
        book.add(Position(f"opt-{index:05d}", option,
                          quantity=float(signs[index] * quantities[index]),
                          steps=steps))
    return book


def _tick_source(book: PositionBook, n_steps: int, seed: int,
                 ) -> SyntheticTickSource:
    initial = {
        position.instrument_id: (position.option.spot,
                                 position.option.volatility,
                                 position.option.rate)
        for position in book.positions()
    }
    return SyntheticTickSource(initial, seed=seed + 2, n_steps=n_steps)


def _latency_summary(latencies: "list[float]") -> dict:
    if not latencies:
        return {"count": 0, "p50_ms": 0.0, "p99_ms": 0.0,
                "p999_ms": 0.0, "mean_ms": 0.0}
    array = np.asarray(latencies, dtype=np.float64)
    return {
        "count": int(array.size),
        "p50_ms": float(np.percentile(array, 50) * 1e3),
        "p99_ms": float(np.percentile(array, 99) * 1e3),
        "p999_ms": float(np.percentile(array, 99.9) * 1e3),
        "mean_ms": float(array.mean() * 1e3),
    }


def _update_fingerprint(update) -> tuple:
    """Everything bitwise about one published aggregate."""
    return (update.seq, float(update.ts).hex(), update.repriced,
            tuple((name, float(value).hex())
                  for name, value in update.columns.items()),
            float(update.pnl).hex())


def _assert_streams_equal(reference, candidate, label: str) -> None:
    if len(reference) != len(candidate):
        raise ReproError(
            f"{label}: published {len(candidate)} aggregates, "
            f"expected {len(reference)}")
    for ref, got in zip(reference, candidate):
        if _update_fingerprint(ref) != _update_fingerprint(got):
            raise ReproError(
                f"{label}: aggregate seq {ref.seq} is not "
                f"bit-identical to the reference stream")


def _run_stream(book: PositionBook, source, stream_config: StreamConfig,
                service_config: ServiceConfig, *, tracer=None,
                oracle_every: int = 0):
    """One full pass; returns ``(runner, wall_s, oracle_checks)``.

    With ``oracle_every > 0`` every that-many-th published aggregate
    (plus the final one, checked after the run) is compared bitwise
    against :func:`full_repricing_oracle` at publication time.
    """
    checks = 0

    def verify(update):
        nonlocal checks
        if oracle_every and update.seq % oracle_every == 0:
            oracle = full_repricing_oracle(book, stream_config)
            if any(oracle[c] != update.columns[c] for c in oracle):
                raise ReproError(
                    f"streamed aggregate seq {update.seq} diverged "
                    f"from the full-repricing oracle")
            checks += 1

    with PricingService(service_config, tracer=tracer) as service:
        runner = StreamRunner(book, service,
                              config=stream_config,
                              on_aggregate=verify if oracle_every else None)
        start = time.perf_counter()
        runner.process(source)
        wall = time.perf_counter() - start
    if oracle_every:
        final = runner.published[-1]
        oracle = full_repricing_oracle(book, stream_config)
        if any(oracle[c] != final.columns[c] for c in oracle):
            raise ReproError(
                "final streamed aggregate diverged from the "
                "full-repricing oracle")
        checks += 1
    return runner, wall, checks


def run_stream_benchmark(
    instrument_counts: Sequence[int] = (256,),
    tick_steps: int = 64,
    steps: int = 256,
    kernel: str = "iv_b",
    batch_ticks: int = 8,
    max_batch: "int | None" = None,
    max_wait_ms: float = 0.0,
    family: LatticeFamily = LatticeFamily.CRR,
    seed: int = 20140324,
    fault_seeds: Sequence[int] = DEFAULT_FAULT_SEEDS,
    backend: str = "numpy",
    rel_tol: float = 2e-3,
    tracer=None,
) -> dict:
    """Measure tick-to-risk latency and revaluation throughput.

    :param instrument_counts: book sizes to sweep.
    :param tick_steps: synthetic-market time steps (each emits one
        spot tick per instrument plus periodic vol/rate ticks).
    :param steps: binomial tree depth per instrument.
    :param batch_ticks: revalue after this many materialised ticks.
    :param max_batch: service flush threshold; defaults to the
        instrument count (one drained generation coalesces fully).
    :param fault_seeds: re-run the whole stream under
        ``FaultPlan.random(seed, ...)`` for each entry and assert the
        aggregate stream is bit-identical to the calm run.
    :param rel_tol: relative spot/vol/rate tolerance of the
        tolerance-gated phase (the savings measurement).
    :param tracer: optional tracer observing the calm run's service.
    """
    results = []
    for n_instruments in instrument_counts:
        flush_at = max_batch if max_batch is not None else n_instruments
        service_config = ServiceConfig(
            max_batch=flush_at, max_wait_ms=max_wait_ms,
            max_queue=max(1024, 2 * n_instruments))
        stream_config = StreamConfig(kernel=kernel, family=family,
                                     backend=backend,
                                     batch_ticks=batch_ticks)

        # -- calm run: latency + throughput + sampled oracle parity --
        book = _build_book(n_instruments, steps, seed)
        source = _tick_source(book, tick_steps, seed)
        runner, wall, oracle_checks = _run_stream(
            book, source, stream_config, service_config, tracer=tracer,
            oracle_every=4)
        stats = runner.stats()
        reference = runner.published
        if stats.revaluations == 0:
            raise ReproError("calm run produced no revaluations")

        # -- replay determinism: same seed, fresh book and service --
        replay_book = _build_book(n_instruments, steps, seed)
        replay, _wall, _checks = _run_stream(
            replay_book, _tick_source(replay_book, tick_steps, seed),
            stream_config, service_config)
        _assert_streams_equal(reference, replay.published,
                              "replayed stream")

        # -- fault runs: transient faults must heal without a ULP --
        for fault_seed in fault_seeds:
            fault_book = _build_book(n_instruments, steps, seed)
            faulted, _wall, _checks = _run_stream(
                fault_book, _tick_source(fault_book, tick_steps, seed),
                stream_config,
                ServiceConfig(
                    max_batch=flush_at, max_wait_ms=max_wait_ms,
                    max_queue=max(1024, 2 * n_instruments),
                    faults=FaultPlan.random(fault_seed, n_instruments)))
            _assert_streams_equal(reference, faulted.published,
                                  f"stream under fault seed {fault_seed}")

        # -- tolerance phase: the suppression savings measurement --
        tolerances = {field: Tolerance(rel_tol=rel_tol)
                      for field in ("spot", "volatility", "rate")}
        gated_book = _build_book(n_instruments, steps, seed, tolerances)
        gated, gated_wall, _checks = _run_stream(
            gated_book, _tick_source(gated_book, tick_steps, seed),
            stream_config, service_config)
        gated_stats = gated.stats()

        reval_rate = stats.revaluations / wall
        results.append({
            "options": n_instruments,
            "ticks": stats.ticks,
            "aggregates": stats.aggregates,
            "parity": {
                "bitwise": True,
                "oracle_checks": oracle_checks,
                "replay": True,
                "fault_seeds": list(fault_seeds),
            },
            "runs": [{
                "workers": 1,
                "wall_time_s": wall,
                "options_per_second": reval_rate,
                "ticks_per_second": stats.ticks / wall,
                "latency": _latency_summary(runner.latencies),
                "stream": stats.as_dict(),
            }],
            "tolerance": {
                "rel_tol": rel_tol,
                "wall_time_s": gated_wall,
                "suppressed_ticks": gated_stats.suppressed_ticks,
                "revaluations": gated_stats.revaluations,
                "revaluations_saved":
                    stats.revaluations - gated_stats.revaluations,
                "suppression_rate": (gated_stats.suppressed_ticks
                                     / gated_stats.ticks
                                     if gated_stats.ticks else 0.0),
                "stream": gated_stats.as_dict(),
            },
        })

    return make_envelope(
        STREAM_BENCH_SCHEMA,
        obs_keys.STREAM_STATS_SCHEMA,
        config={
            "kernel": kernel,
            "family": family.value,
            "steps": steps,
            "tick_steps": tick_steps,
            "seed": seed,
            "batch_ticks": batch_ticks,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "fault_seeds": list(fault_seeds),
            "backend": backend,
            "rel_tol": rel_tol,
        },
        results=results,
    )
