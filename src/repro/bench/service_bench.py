"""Benchmark harness for the pricing service's coalescing efficiency.

Measures what the serving layer costs: ``clients`` closed-loop client
threads submit *single-option* requests to a
:class:`~repro.service.PricingService` and the achieved throughput is
compared against one direct ``engine.run`` of the very same batch —
the upper bound the coalescer tries to approach.  Three quantities per
batch size:

* **efficiency** — coalesced single-option throughput as a fraction of
  the direct same-size-batch rate (the headline: the dynamic-batching
  overhead the service adds);
* **cache speedup** — a whole-batch request cold (queued, flushed,
  executed) vs the identical request again (pure content-cache hit);
* **parity** — every service price is asserted bitwise-identical to
  the direct engine run (the engine's per-option math is
  row-independent, so coalescing must not move a single ULP — even
  under an injected ``fault_seed``, whose transient faults heal on
  retry);
* **latency** — per-request p50/p99 from the closed-loop phase (the
  tail is where coalescing's ``max_wait_ms`` gamble shows up);
* **overload saturation** — an open-loop ramp against a small-queue
  service finds the offered load at which the shed/reject rate first
  crosses 1%, i.e. where the backpressure contract starts refusing
  work instead of queueing it.

The document mirrors ``BENCH_engine.json``: the regression gate
(:func:`~repro.bench.engine_bench.check_throughput_regression`)
matches runs on ``(options, workers)`` and compares
``options_per_second``, so the frozen
``benchmarks/BENCH_service.quick.json`` plugs into the same CI
machinery as the engine and greeks baselines.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Sequence

import numpy as np

from ..api import PricingRequest
from ..engine import EngineConfig, PricingEngine
from ..engine.faults import FaultPlan
from ..errors import ReproError
from ..finance.lattice import LatticeFamily
from ..finance.market import generate_batch
from ..obs import keys as obs_keys
from ..service import PricingService, ServiceConfig
from .gate import make_envelope, write_benchmark  # noqa: F401  (re-export)

__all__ = [
    "SERVE_BENCH_SCHEMA",
    "SERVICE_BENCH_SCHEMA",
    "run_serve_benchmark",
    "run_service_benchmark",
]

#: Schema tag written into every BENCH_service.json.  v2 added the
#: per-request latency percentiles and the overload saturation probe;
#: the ``(options, workers) -> options_per_second`` fields the
#: regression gate matches on are unchanged from v1.
SERVICE_BENCH_SCHEMA = "repro-service-bench/v2"

#: Loss (shed + rejected over offered) fraction at which the overload
#: probe declares the service saturated.
SATURATION_LOSS_RATE = 0.01


def _closed_loop(service: PricingService, options, steps: int, kernel: str,
                 clients: int,
                 backend: str = "auto") -> "tuple[np.ndarray, float]":
    """Drive the service with ``clients`` closed-loop threads.

    Each client owns a strided share of the batch and submits one
    single-option request at a time, waiting for its result before the
    next — the classic closed-loop load model, so concurrency (and
    therefore achievable flush size) equals the client count.
    Returns the prices in input order, the phase wall time, and every
    request's submit-to-result latency in seconds.
    """
    prices = np.empty(len(options), dtype=np.float64)
    latencies = np.empty(len(options), dtype=np.float64)
    errors: "list[BaseException]" = []

    def client(start: int) -> None:
        try:
            for index in range(start, len(options), clients):
                request = PricingRequest(
                    options=(options[index],), steps=steps, kernel=kernel,
                    backend=backend, strict=False)
                submitted = time.perf_counter()
                prices[index] = service.submit(request).result().prices[0]
                latencies[index] = time.perf_counter() - submitted
        except BaseException as exc:  # noqa: BLE001 - reported to the driver
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(start,), daemon=True)
               for start in range(clients)]
    start_time = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start_time
    if errors:
        raise errors[0]
    return prices, wall, latencies


def _latency_summary(latencies: np.ndarray) -> dict:
    """p50/p99/mean of per-request latency, in milliseconds."""
    return {
        "count": int(latencies.size),
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "mean_ms": float(latencies.mean() * 1e3),
        "max_ms": float(latencies.max() * 1e3),
    }


def _overload_probe(options, steps: int, kernel: str, backend: str,
                    max_batch: int, max_wait_ms: float, start_rate: float,
                    levels: int = 6, requests_per_level: int = 160) -> dict:
    """Ramp offered load until the shed/reject rate crosses 1%.

    Open-loop: a single driver paces single-option submissions at a
    fixed offered rate (it never waits for a result before the next
    submit), against a deliberately small-queue service so overload
    surfaces as admission behaviour rather than unbounded queueing.
    Each ramp level gets a fresh service; a request is *lost* when
    ``submit`` rejects it or its future resolves to
    :class:`~repro.errors.ServiceOverloadedError` (a shed).  The
    saturation point is the first offered rate whose loss fraction
    reaches :data:`SATURATION_LOSS_RATE`.
    """
    from ..errors import ServiceOverloadedError

    levels_out = []
    saturation = None
    rate = max(start_rate, 1.0)
    for _ in range(levels):
        config = ServiceConfig(max_batch=max_batch, max_wait_ms=max_wait_ms,
                               max_queue=4 * max_batch)
        rejected = shed = 0
        futures = []
        with PricingService(config) as service:
            begin = time.perf_counter()
            for index in range(requests_per_level):
                target = begin + index / rate
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                request = PricingRequest(
                    options=(options[index % len(options)],), steps=steps,
                    kernel=kernel, backend=backend, strict=False)
                try:
                    futures.append(service.submit(request))
                except ServiceOverloadedError:
                    rejected += 1
            offered_wall = time.perf_counter() - begin
            for future in futures:
                exc = future.exception()
                if isinstance(exc, ServiceOverloadedError):
                    shed += 1
                elif exc is not None:
                    raise exc
        offered_rate = requests_per_level / offered_wall
        loss_rate = (rejected + shed) / requests_per_level
        levels_out.append({
            "offered_rps": offered_rate,
            "rejected": rejected,
            "shed": shed,
            "loss_rate": loss_rate,
        })
        if loss_rate >= SATURATION_LOSS_RATE and saturation is None:
            saturation = offered_rate
            break
        rate *= 2.0
    return {
        "loss_threshold": SATURATION_LOSS_RATE,
        "max_queue": 4 * max_batch,
        "levels": levels_out,
        "saturation_offered_rps": saturation,
    }


def run_service_benchmark(
    options_counts: Sequence[int] = (1024,),
    steps: int = 512,
    kernel: str = "iv_b",
    clients: int = 64,
    max_batch: "int | None" = None,
    max_wait_ms: float = 2.0,
    family: LatticeFamily = LatticeFamily.CRR,
    seed: int = 20140324,
    fault_seed: "int | None" = None,
    backend: str = "numpy",
    tracer=None,
) -> dict:
    """Measure service throughput against the direct-engine bound.

    For each batch size: one direct ``engine.run`` of the whole batch
    (the baseline), then the closed-loop single-option phase through a
    fresh :class:`PricingService`, then the cold/hit cache phase with
    a whole-batch request.  Bitwise parity with the direct run is
    asserted at every stage.

    :param clients: closed-loop client threads (in-flight population).
    :param max_batch: service flush threshold; defaults to ``clients``
        so a full in-flight generation coalesces into one flush.
    :param fault_seed: install ``FaultPlan.random(fault_seed, ...)``
        (transient raise/NaN faults, one failed attempt each) into the
        direct engine *and* the service's engines — both heal on retry,
        so parity must still be bitwise.
    :param backend: roll-loop backend (see :mod:`repro.backends`) for
        the direct engine and every request, so the coalescer's
        engines resolve the same one.  Backends are bit-identical by
        contract, so the parity assertions are unchanged.
    :param tracer: optional tracer handed to the service (enqueue /
        flush / engine spans land in one trace).
    """
    if max_batch is None:
        max_batch = clients
    results = []
    for n_options in options_counts:
        options = list(generate_batch(n_options=n_options, seed=seed).options)
        faults = (FaultPlan.random(fault_seed, n_options)
                  if fault_seed is not None else None)

        with PricingEngine(kernel=kernel, family=family,
                           config=EngineConfig(backend=backend),
                           faults=faults) as engine:
            start = time.perf_counter()
            direct = engine.run(options, steps)
            direct_wall = time.perf_counter() - start
        if direct.failures:
            raise ReproError(
                f"direct run under fault seed {fault_seed} did not heal: "
                f"{direct.failures[0]}")
        direct_rate = n_options / direct_wall

        config = ServiceConfig(max_batch=max_batch, max_wait_ms=max_wait_ms,
                               max_queue=max(1024, 2 * n_options),
                               faults=faults)
        with PricingService(config, tracer=tracer) as service:
            service_prices, service_wall, latencies = _closed_loop(
                service, options, steps, kernel, clients, backend=backend)
            if not np.array_equal(service_prices, direct.prices):
                raise ReproError(
                    "coalesced service prices are not bit-identical to the "
                    "direct engine run")

            batch_request = PricingRequest(options=tuple(options),
                                           steps=steps, kernel=kernel,
                                           backend=backend)
            start = time.perf_counter()
            cold = service.submit(batch_request).result()
            cache_cold_s = time.perf_counter() - start
            start = time.perf_counter()
            hit = service.submit(batch_request).result()
            cache_hit_s = time.perf_counter() - start
            if not hit.cache_hit:
                raise ReproError("repeated identical request missed the cache")
            for label, payload in (("cold", cold), ("hit", hit)):
                if not np.array_equal(payload.prices, direct.prices):
                    raise ReproError(
                        f"cache-{label} prices are not bit-identical to the "
                        f"direct engine run")
            stats = service.close()

        service_rate = n_options / service_wall
        overload = _overload_probe(options, steps, kernel, backend,
                                   max_batch=max_batch,
                                   max_wait_ms=max_wait_ms,
                                   start_rate=service_rate)
        results.append({
            "options": n_options,
            "baseline": {
                "label": "direct engine.run of the same batch",
                "wall_time_s": direct_wall,
                "options_per_second": direct_rate,
            },
            "parity": {
                "bit_identical_to_direct": True,
            },
            "runs": [{
                "workers": 1,
                "backend": direct.stats.backend,
                "backend_compile_seconds":
                    direct.stats.backend_compile_seconds,
                "wall_time_s": service_wall,
                "options_per_second": service_rate,
                "efficiency_vs_direct": service_rate / direct_rate,
                "cache_cold_s": cache_cold_s,
                "cache_hit_s": cache_hit_s,
                "cache_speedup": (cache_cold_s / cache_hit_s
                                  if cache_hit_s > 0 else float("inf")),
                "latency": _latency_summary(latencies),
                "service": stats.as_dict(),
            }],
            "overload": overload,
        })

    return make_envelope(
        SERVICE_BENCH_SCHEMA,
        obs_keys.SERVICE_STATS_SCHEMA,
        config={
            "kernel": kernel,
            "family": family.value,
            "steps": steps,
            "seed": seed,
            "clients": clients,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "fault_seed": fault_seed,
            "backend": backend,
        },
        results=results,
    )


# ---------------------------------------------------------------------------
# network mode: the sharded serving tier
# ---------------------------------------------------------------------------

#: Schema tag of the network-mode document.  The ``(options, workers)
#: -> options_per_second`` fields match the engine gate, with
#: ``workers`` carrying the *shard count* — scaling regressions trip
#: the same CI machinery as engine/greeks/service baselines.
SERVE_BENCH_SCHEMA = "repro-serve-bench/v1"

#: The traffic mix: each request cycles through these
#: ``(kernel, precision, family)`` variants, so batch keys spread over
#: the routing ring instead of pinning every request to one shard
#: (kernel IV.B admits only CRR; the spread comes from IV.A and the
#: reference kernel).
SERVE_TRAFFIC_VARIANTS = (
    ("iv_b", "double", "crr"),
    ("iv_a", "double", "crr"),
    ("iv_a", "double", "jarrow-rudd"),
    ("iv_a", "double", "tian"),
    ("reference", "double", "crr"),
    ("reference", "single", "crr"),
    ("iv_b", "single", "crr"),
    ("iv_a", "single", "jarrow-rudd"),
)


def _serve_traffic(n_requests: int, options_per_request: int, steps: int,
                   seed: int, backend: str) -> "list[PricingRequest]":
    """Cache-cold routed traffic.

    Every request carries a *distinct* option batch (seed offset by
    request index), so the shards' content caches never hit, and the
    variant cycle spreads the requests' batch keys over the ring.
    """
    requests = []
    for index in range(n_requests):
        kernel, precision, family = SERVE_TRAFFIC_VARIANTS[
            index % len(SERVE_TRAFFIC_VARIANTS)]
        options = tuple(generate_batch(n_options=options_per_request,
                                       seed=seed + index).options)
        requests.append(PricingRequest(
            options=options, steps=steps, kernel=kernel,
            precision=precision, family=family, backend=backend,
            strict=False))
    return requests


def _serve_closed_loop(host: str, port: int, requests, clients: int):
    """Drive the server with ``clients`` closed-loop network clients.

    Each client thread owns one kept-alive connection and a strided
    share of the request list.  Returns the results in request order,
    the phase wall time, and per-request latencies in seconds.
    """
    from ..serve import ServeClient

    results: "list" = [None] * len(requests)
    latencies = np.empty(len(requests), dtype=np.float64)
    errors: "list[BaseException]" = []

    def client_loop(start: int) -> None:
        try:
            with ServeClient(host, port) as client:
                for index in range(start, len(requests), clients):
                    submitted = time.perf_counter()
                    results[index] = client.price(requests[index])
                    latencies[index] = time.perf_counter() - submitted
        except BaseException as exc:  # noqa: BLE001 - reported to the driver
            errors.append(exc)

    threads = [threading.Thread(target=client_loop, args=(start,),
                                daemon=True)
               for start in range(clients)]
    start_time = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start_time
    if errors:
        raise errors[0]
    return results, wall, latencies


def _serve_saturation(host: str, port: int, options_per_request: int,
                      steps: int, seed: int, backend: str, clients: int,
                      start_rate: float, levels: int,
                      requests_per_level: int,
                      probe_deadline_ms: float) -> dict:
    """Open-loop ramp: p50/p99 vs offered load until requests are lost.

    Each level paces ``requests_per_level`` fresh (cache-cold)
    requests at a fixed offered rate across ``clients`` connections;
    every request carries ``probe_deadline_ms``, so overload surfaces
    as typed deadline/overload errors instead of unbounded queueing.
    The saturation point is the first offered rate whose loss fraction
    reaches :data:`SATURATION_LOSS_RATE`.
    """
    from dataclasses import replace as dc_replace

    from ..errors import DeadlineExceededError, ServiceOverloadedError
    from ..serve import ServeClient

    levels_out = []
    saturation = None
    rate = max(start_rate, 1.0)
    for level in range(levels):
        requests = [
            dc_replace(request, deadline_ms=probe_deadline_ms)
            for request in _serve_traffic(
                requests_per_level, options_per_request, steps,
                seed + 100_000 * (level + 1), backend)
        ]
        latencies: "list[float]" = []
        lost = [0]
        errors: "list[BaseException]" = []
        lock = threading.Lock()
        begin = time.perf_counter()

        def probe_loop(start: int, begin=begin, requests=requests,
                       lost=lost, latencies=latencies, errors=errors,
                       lock=lock, rate=rate) -> None:
            try:
                with ServeClient(host, port) as client:
                    for index in range(start, len(requests), clients):
                        due = begin + index / rate
                        delay = due - time.perf_counter()
                        if delay > 0:
                            time.sleep(delay)
                        submitted = time.perf_counter()
                        try:
                            client.price(requests[index])
                        except (DeadlineExceededError,
                                ServiceOverloadedError):
                            with lock:
                                lost[0] += 1
                            continue
                        with lock:
                            latencies.append(
                                time.perf_counter() - submitted)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=probe_loop, args=(start,),
                                    daemon=True)
                   for start in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - begin
        if errors:
            raise errors[0]
        offered_rate = len(requests) / wall
        loss_rate = lost[0] / len(requests)
        entry = {
            "offered_rps": offered_rate,
            "achieved_rps": len(latencies) / wall,
            "lost": lost[0],
            "loss_rate": loss_rate,
        }
        if latencies:
            entry["latency"] = _latency_summary(
                np.asarray(latencies, dtype=np.float64))
        levels_out.append(entry)
        if loss_rate >= SATURATION_LOSS_RATE and saturation is None:
            saturation = offered_rate
            break
        rate *= 2.0
    return {
        "loss_threshold": SATURATION_LOSS_RATE,
        "probe_deadline_ms": probe_deadline_ms,
        "levels": levels_out,
        "saturation_offered_rps": saturation,
    }


def run_serve_benchmark(
    requests_total: int = 64,
    options_per_request: int = 8,
    steps: int = 256,
    shard_counts: Sequence[int] = (1, 2),
    clients: int = 8,
    seed: int = 20140324,
    fault_seed: "int | None" = None,
    backend: str = "numpy",
    max_wait_ms: float = 2.0,
    saturation_levels: int = 4,
    probe_deadline_ms: float = 2000.0,
    min_two_shard_speedup: float = 1.6,
    assert_scaling: "bool | None" = None,
    tracer=None,
) -> dict:
    """Network-mode benchmark of the sharded serving tier.

    For each shard count: boot a :class:`~repro.serve.PricingServer`,
    warm every engine key with throwaway traffic, then drive the same
    cache-cold routed request mix closed-loop over HTTP and record the
    aggregate throughput.  Every network result is asserted *bitwise*
    identical to the same request through an in-process
    :class:`~repro.service.PricingService` (the shards run the same
    service, so the wire codec and the shared-memory transport must
    not move a single ULP — including under an injected
    ``fault_seed``, whose transient faults heal on retry).  The run at
    the highest shard count also takes the open-loop saturation ramp
    (p50/p99 vs offered load).

    Shard scaling is the headline: ``runs[].workers`` carries the
    shard count and ``options_per_second`` the aggregate rate, so
    :func:`~repro.bench.engine_bench.check_throughput_regression`
    gates it like every other baseline.  When the host has at least
    two CPUs (or ``assert_scaling=True``), the two-shard run must
    reach ``min_two_shard_speedup`` times the one-shard rate, else the
    benchmark itself raises — shared-nothing shards that do not scale
    are a defect, not a data point.

    :param assert_scaling: ``None`` asserts only when
        ``os.cpu_count() >= 2`` (single-core hosts cannot scale by
        construction; the document still records the measured ratio).
    :param tracer: optional tracer handed to every server boot; each
        network request lands as a ``serve.request`` span.
    """
    from ..serve import PricingServer, ServeConfig

    if not shard_counts or any(count < 1 for count in shard_counts):
        raise ReproError("shard_counts must name at least one shard")
    if assert_scaling is None:
        assert_scaling = (os.cpu_count() or 1) >= 2

    faults = (FaultPlan.random(fault_seed, options_per_request)
              if fault_seed is not None else None)
    service_config = ServiceConfig(max_wait_ms=max_wait_ms, faults=faults)
    requests = _serve_traffic(requests_total, options_per_request, steps,
                              seed, backend)
    warmup = _serve_traffic(len(SERVE_TRAFFIC_VARIANTS), options_per_request,
                            steps, seed + 50_000, backend)

    # the parity oracle: the identical request stream through one
    # in-process service (same config, same faults)
    with PricingService(service_config) as oracle:
        expected = [oracle.submit(request).result().prices.copy()
                    for request in requests]

    total_options = requests_total * options_per_request
    runs = []
    saturation = None
    rates: "dict[int, float]" = {}
    for shards in sorted(set(int(count) for count in shard_counts)):
        config = ServeConfig(shards=shards, service=service_config)
        with PricingServer(config, tracer=tracer) as server:
            _serve_closed_loop(server.host, server.port, warmup,
                               min(clients, len(warmup)))
            results, wall, latencies = _serve_closed_loop(
                server.host, server.port, requests, clients)
            for request, result, want in zip(requests, results, expected):
                if result.cache_hit:
                    raise ReproError(
                        "serve bench traffic must be cache-cold, but a "
                        "request hit the shard's content cache")
                if not np.array_equal(result.prices, want):
                    raise ReproError(
                        f"routed prices for batch key {request.batch_key} "
                        f"are not bit-identical to the in-process service")
            if shards == max(shard_counts):
                saturation = _serve_saturation(
                    server.host, server.port, options_per_request, steps,
                    seed, backend, clients,
                    start_rate=len(requests) / wall,
                    levels=saturation_levels,
                    requests_per_level=max(len(requests) // 2, clients),
                    probe_deadline_ms=probe_deadline_ms)
            stats = server.stop()
        rate = total_options / wall
        rates[shards] = rate
        runs.append({
            "workers": shards,
            "backend": backend,
            "wall_time_s": wall,
            "requests_per_second": requests_total / wall,
            "options_per_second": rate,
            "latency": _latency_summary(latencies),
            "serve": stats.as_dict(),
        })

    baseline_rate = rates[min(rates)]
    for run in runs:
        run["speedup_vs_one_shard"] = run["options_per_second"] / baseline_rate
        run["efficiency_vs_linear"] = (
            run["speedup_vs_one_shard"] / run["workers"])

    scaling = {
        "asserted": bool(assert_scaling),
        "min_two_shard_speedup": min_two_shard_speedup,
        "two_shard_speedup": (rates[2] / rates[1]
                              if 1 in rates and 2 in rates else None),
    }
    if assert_scaling and scaling["two_shard_speedup"] is not None:
        if scaling["two_shard_speedup"] < min_two_shard_speedup:
            raise ReproError(
                f"two shards reached only "
                f"{scaling['two_shard_speedup']:.2f}x the one-shard rate "
                f"(need >= {min_two_shard_speedup:.1f}x) — the shards are "
                f"not scaling shared-nothing")

    return make_envelope(
        SERVE_BENCH_SCHEMA,
        obs_keys.SERVE_STATS_SCHEMA,
        config={
            "kernel": "mixed",
            "variants": [list(variant) for variant in
                         SERVE_TRAFFIC_VARIANTS],
            "steps": steps,
            "seed": seed,
            "requests": requests_total,
            "options_per_request": options_per_request,
            "shard_counts": sorted(set(int(c) for c in shard_counts)),
            "clients": clients,
            "max_wait_ms": max_wait_ms,
            "fault_seed": fault_seed,
            "backend": backend,
        },
        results=[{
            "options": total_options,
            "parity": {
                "bit_identical_to_in_process": True,
                "fault_seed": fault_seed,
            },
            "scaling": scaling,
            "runs": runs,
            "saturation": saturation,
        }],
    )
