"""Benchmark harness for the pricing service's coalescing efficiency.

Measures what the serving layer costs: ``clients`` closed-loop client
threads submit *single-option* requests to a
:class:`~repro.service.PricingService` and the achieved throughput is
compared against one direct ``engine.run`` of the very same batch —
the upper bound the coalescer tries to approach.  Three quantities per
batch size:

* **efficiency** — coalesced single-option throughput as a fraction of
  the direct same-size-batch rate (the headline: the dynamic-batching
  overhead the service adds);
* **cache speedup** — a whole-batch request cold (queued, flushed,
  executed) vs the identical request again (pure content-cache hit);
* **parity** — every service price is asserted bitwise-identical to
  the direct engine run (the engine's per-option math is
  row-independent, so coalescing must not move a single ULP — even
  under an injected ``fault_seed``, whose transient faults heal on
  retry);
* **latency** — per-request p50/p99 from the closed-loop phase (the
  tail is where coalescing's ``max_wait_ms`` gamble shows up);
* **overload saturation** — an open-loop ramp against a small-queue
  service finds the offered load at which the shed/reject rate first
  crosses 1%, i.e. where the backpressure contract starts refusing
  work instead of queueing it.

The document mirrors ``BENCH_engine.json``: the regression gate
(:func:`~repro.bench.engine_bench.check_throughput_regression`)
matches runs on ``(options, workers)`` and compares
``options_per_second``, so the frozen
``benchmarks/BENCH_service.quick.json`` plugs into the same CI
machinery as the engine and greeks baselines.
"""

from __future__ import annotations

import os
import platform as _platform
import threading
import time
from typing import Sequence

import numpy as np

from ..api import PricingRequest
from ..engine import EngineConfig, PricingEngine
from ..engine.faults import FaultPlan
from ..errors import ReproError
from ..finance.lattice import LatticeFamily
from ..finance.market import generate_batch
from ..obs import keys as obs_keys
from ..service import PricingService, ServiceConfig
from .engine_bench import write_benchmark  # noqa: F401  (re-export for CLI)

__all__ = ["SERVICE_BENCH_SCHEMA", "run_service_benchmark"]

#: Schema tag written into every BENCH_service.json.  v2 added the
#: per-request latency percentiles and the overload saturation probe;
#: the ``(options, workers) -> options_per_second`` fields the
#: regression gate matches on are unchanged from v1.
SERVICE_BENCH_SCHEMA = "repro-service-bench/v2"

#: Loss (shed + rejected over offered) fraction at which the overload
#: probe declares the service saturated.
SATURATION_LOSS_RATE = 0.01


def _closed_loop(service: PricingService, options, steps: int, kernel: str,
                 clients: int,
                 backend: str = "auto") -> "tuple[np.ndarray, float]":
    """Drive the service with ``clients`` closed-loop threads.

    Each client owns a strided share of the batch and submits one
    single-option request at a time, waiting for its result before the
    next — the classic closed-loop load model, so concurrency (and
    therefore achievable flush size) equals the client count.
    Returns the prices in input order, the phase wall time, and every
    request's submit-to-result latency in seconds.
    """
    prices = np.empty(len(options), dtype=np.float64)
    latencies = np.empty(len(options), dtype=np.float64)
    errors: "list[BaseException]" = []

    def client(start: int) -> None:
        try:
            for index in range(start, len(options), clients):
                request = PricingRequest(
                    options=(options[index],), steps=steps, kernel=kernel,
                    backend=backend, strict=False)
                submitted = time.perf_counter()
                prices[index] = service.submit(request).result().prices[0]
                latencies[index] = time.perf_counter() - submitted
        except BaseException as exc:  # noqa: BLE001 - reported to the driver
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(start,), daemon=True)
               for start in range(clients)]
    start_time = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start_time
    if errors:
        raise errors[0]
    return prices, wall, latencies


def _latency_summary(latencies: np.ndarray) -> dict:
    """p50/p99/mean of per-request latency, in milliseconds."""
    return {
        "count": int(latencies.size),
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "mean_ms": float(latencies.mean() * 1e3),
        "max_ms": float(latencies.max() * 1e3),
    }


def _overload_probe(options, steps: int, kernel: str, backend: str,
                    max_batch: int, max_wait_ms: float, start_rate: float,
                    levels: int = 6, requests_per_level: int = 160) -> dict:
    """Ramp offered load until the shed/reject rate crosses 1%.

    Open-loop: a single driver paces single-option submissions at a
    fixed offered rate (it never waits for a result before the next
    submit), against a deliberately small-queue service so overload
    surfaces as admission behaviour rather than unbounded queueing.
    Each ramp level gets a fresh service; a request is *lost* when
    ``submit`` rejects it or its future resolves to
    :class:`~repro.errors.ServiceOverloadedError` (a shed).  The
    saturation point is the first offered rate whose loss fraction
    reaches :data:`SATURATION_LOSS_RATE`.
    """
    from ..errors import ServiceOverloadedError

    levels_out = []
    saturation = None
    rate = max(start_rate, 1.0)
    for _ in range(levels):
        config = ServiceConfig(max_batch=max_batch, max_wait_ms=max_wait_ms,
                               max_queue=4 * max_batch)
        rejected = shed = 0
        futures = []
        with PricingService(config) as service:
            begin = time.perf_counter()
            for index in range(requests_per_level):
                target = begin + index / rate
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                request = PricingRequest(
                    options=(options[index % len(options)],), steps=steps,
                    kernel=kernel, backend=backend, strict=False)
                try:
                    futures.append(service.submit(request))
                except ServiceOverloadedError:
                    rejected += 1
            offered_wall = time.perf_counter() - begin
            for future in futures:
                exc = future.exception()
                if isinstance(exc, ServiceOverloadedError):
                    shed += 1
                elif exc is not None:
                    raise exc
        offered_rate = requests_per_level / offered_wall
        loss_rate = (rejected + shed) / requests_per_level
        levels_out.append({
            "offered_rps": offered_rate,
            "rejected": rejected,
            "shed": shed,
            "loss_rate": loss_rate,
        })
        if loss_rate >= SATURATION_LOSS_RATE and saturation is None:
            saturation = offered_rate
            break
        rate *= 2.0
    return {
        "loss_threshold": SATURATION_LOSS_RATE,
        "max_queue": 4 * max_batch,
        "levels": levels_out,
        "saturation_offered_rps": saturation,
    }


def run_service_benchmark(
    options_counts: Sequence[int] = (1024,),
    steps: int = 512,
    kernel: str = "iv_b",
    clients: int = 64,
    max_batch: "int | None" = None,
    max_wait_ms: float = 2.0,
    family: LatticeFamily = LatticeFamily.CRR,
    seed: int = 20140324,
    fault_seed: "int | None" = None,
    backend: str = "numpy",
    tracer=None,
) -> dict:
    """Measure service throughput against the direct-engine bound.

    For each batch size: one direct ``engine.run`` of the whole batch
    (the baseline), then the closed-loop single-option phase through a
    fresh :class:`PricingService`, then the cold/hit cache phase with
    a whole-batch request.  Bitwise parity with the direct run is
    asserted at every stage.

    :param clients: closed-loop client threads (in-flight population).
    :param max_batch: service flush threshold; defaults to ``clients``
        so a full in-flight generation coalesces into one flush.
    :param fault_seed: install ``FaultPlan.random(fault_seed, ...)``
        (transient raise/NaN faults, one failed attempt each) into the
        direct engine *and* the service's engines — both heal on retry,
        so parity must still be bitwise.
    :param backend: roll-loop backend (see :mod:`repro.backends`) for
        the direct engine and every request, so the coalescer's
        engines resolve the same one.  Backends are bit-identical by
        contract, so the parity assertions are unchanged.
    :param tracer: optional tracer handed to the service (enqueue /
        flush / engine spans land in one trace).
    """
    if max_batch is None:
        max_batch = clients
    results = []
    for n_options in options_counts:
        options = list(generate_batch(n_options=n_options, seed=seed).options)
        faults = (FaultPlan.random(fault_seed, n_options)
                  if fault_seed is not None else None)

        with PricingEngine(kernel=kernel, family=family,
                           config=EngineConfig(backend=backend),
                           faults=faults) as engine:
            start = time.perf_counter()
            direct = engine.run(options, steps)
            direct_wall = time.perf_counter() - start
        if direct.failures:
            raise ReproError(
                f"direct run under fault seed {fault_seed} did not heal: "
                f"{direct.failures[0]}")
        direct_rate = n_options / direct_wall

        config = ServiceConfig(max_batch=max_batch, max_wait_ms=max_wait_ms,
                               max_queue=max(1024, 2 * n_options),
                               faults=faults)
        with PricingService(config, tracer=tracer) as service:
            service_prices, service_wall, latencies = _closed_loop(
                service, options, steps, kernel, clients, backend=backend)
            if not np.array_equal(service_prices, direct.prices):
                raise ReproError(
                    "coalesced service prices are not bit-identical to the "
                    "direct engine run")

            batch_request = PricingRequest(options=tuple(options),
                                           steps=steps, kernel=kernel,
                                           backend=backend)
            start = time.perf_counter()
            cold = service.submit(batch_request).result()
            cache_cold_s = time.perf_counter() - start
            start = time.perf_counter()
            hit = service.submit(batch_request).result()
            cache_hit_s = time.perf_counter() - start
            if not hit.cache_hit:
                raise ReproError("repeated identical request missed the cache")
            for label, payload in (("cold", cold), ("hit", hit)):
                if not np.array_equal(payload.prices, direct.prices):
                    raise ReproError(
                        f"cache-{label} prices are not bit-identical to the "
                        f"direct engine run")
            stats = service.close()

        service_rate = n_options / service_wall
        overload = _overload_probe(options, steps, kernel, backend,
                                   max_batch=max_batch,
                                   max_wait_ms=max_wait_ms,
                                   start_rate=service_rate)
        results.append({
            "options": n_options,
            "baseline": {
                "label": "direct engine.run of the same batch",
                "wall_time_s": direct_wall,
                "options_per_second": direct_rate,
            },
            "parity": {
                "bit_identical_to_direct": True,
            },
            "runs": [{
                "workers": 1,
                "backend": direct.stats.backend,
                "backend_compile_seconds":
                    direct.stats.backend_compile_seconds,
                "wall_time_s": service_wall,
                "options_per_second": service_rate,
                "efficiency_vs_direct": service_rate / direct_rate,
                "cache_cold_s": cache_cold_s,
                "cache_hit_s": cache_hit_s,
                "cache_speedup": (cache_cold_s / cache_hit_s
                                  if cache_hit_s > 0 else float("inf")),
                "latency": _latency_summary(latencies),
                "service": stats.as_dict(),
            }],
            "overload": overload,
        })

    return {
        "schema": SERVICE_BENCH_SCHEMA,
        "stats_schema": obs_keys.SERVICE_STATS_SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": _platform.platform(),
            "python": _platform.python_version(),
            "numpy": np.__version__,
        },
        "config": {
            "kernel": kernel,
            "family": family.value,
            "steps": steps,
            "seed": seed,
            "clients": clients,
            "max_batch": max_batch,
            "max_wait_ms": max_wait_ms,
            "fault_seed": fault_seed,
            "backend": backend,
        },
        "results": results,
    }
