"""The shared bench-report envelope and the CI regression gate.

Every benchmark harness (engine, greeks, service, serve, stream) used
to build its own copy of the same document scaffolding — the host
block, the schema tags, the JSON writer, the throughput gate.  This
module owns all of it once:

* :func:`make_envelope` stamps the unified ``repro-bench/v2`` envelope
  on a harness document: the harness keeps its own ``schema`` (which
  external consumers switch on, unchanged), and gains an ``envelope``
  tag plus the shared ``host`` block — now including the git revision,
  so a stored baseline says what code produced it.
* :func:`load_benchmark` reads a stored document and normalises the
  envelope: a pre-v2 file (no ``envelope`` key — every
  ``benchmarks/BENCH_*.quick.json`` baseline shipped before this
  module) is tagged ``repro-bench/v1`` so downstream code can branch
  on one field instead of sniffing keys.
* :func:`check_throughput_regression` is the CI gate shared by every
  ``--check-against`` code path: configurations matched on
  ``(options, workers, fused_greeks)``, equal ``config`` required,
  >30% throughput regression fails.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import subprocess
from pathlib import Path

import numpy as np

from ..errors import ReproError

__all__ = [
    "BENCH_ENVELOPE_SCHEMA",
    "BENCH_ENVELOPE_V1",
    "check_throughput_regression",
    "git_revision",
    "host_info",
    "load_benchmark",
    "make_envelope",
    "write_benchmark",
]

#: Envelope tag of documents produced by this build.
BENCH_ENVELOPE_SCHEMA = "repro-bench/v2"

#: Envelope tag :func:`load_benchmark` assigns to pre-envelope files.
BENCH_ENVELOPE_V1 = "repro-bench/v1"


def git_revision() -> "str | None":
    """The repo's HEAD commit, or ``None`` outside a checkout.

    Best-effort provenance only: a missing ``git`` binary, a source
    tarball or a timeout all degrade to ``None`` rather than failing
    the benchmark that asked.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=5.0)
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    revision = out.stdout.strip()
    return revision or None


def host_info() -> dict:
    """The shared ``host`` block of every benchmark document."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": _platform.platform(),
        "python": _platform.python_version(),
        "numpy": np.__version__,
        "git": git_revision(),
    }


def make_envelope(schema: str, stats_schema: str, config: dict,
                  results, **extra) -> dict:
    """Assemble one benchmark document under the unified envelope.

    ``schema`` stays the harness's own document tag (stable, external
    consumers switch on it); ``envelope`` tags the shared scaffolding
    version.  ``extra`` keys land top-level (e.g. the serve bench's
    ``scaling`` block).
    """
    document = {
        "schema": schema,
        "envelope": BENCH_ENVELOPE_SCHEMA,
        "stats_schema": stats_schema,
        "host": host_info(),
        "config": config,
        "results": results,
    }
    document.update(extra)
    return document


def write_benchmark(document: dict, path: "str | Path") -> Path:
    """Serialise a benchmark document to ``path`` (pretty-printed)."""
    path = Path(path)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


def load_benchmark(path: "str | Path") -> dict:
    """Read a stored benchmark document, normalising the envelope.

    Pre-envelope files (every baseline written before ``repro-bench/
    v2``) carry no ``envelope`` key; they are tagged
    :data:`BENCH_ENVELOPE_V1` on load so callers can branch on the one
    field.  Anything that is not a JSON object is refused.
    """
    path = Path(path)
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ReproError(
            f"{path}: benchmark document must be a JSON object, "
            f"got {type(document).__name__}")
    document.setdefault("envelope", BENCH_ENVELOPE_V1)
    return document


def check_throughput_regression(
    current: dict,
    baseline: dict,
    max_regression: float = 0.30,
) -> "list[str]":
    """CI regression gate: compare two benchmark documents.

    Configurations are matched on ``(options, workers, fused_greeks)``
    — the fused flag defaults to ``0`` so pre-v4 documents and the
    service benchmark (whose rows carry neither) keep matching — and
    the global kernel/steps/backend config must agree; a configuration
    fails when its options/s fell more than ``max_regression`` below
    the stored baseline.  Returns the list of failure messages (empty
    = pass).
    """
    failures: "list[str]" = []
    if current["config"] != baseline["config"]:
        return [
            f"benchmark configs differ (current {current['config']} vs "
            f"baseline {baseline['config']}); not comparable"
        ]
    baseline_rates = {
        (entry["options"], run["workers"], run.get("fused_greeks", 0)):
            run["options_per_second"]
        for entry in baseline["results"]
        for run in entry["runs"]
    }
    for entry in current["results"]:
        for run in entry["runs"]:
            key = (entry["options"], run["workers"],
                   run.get("fused_greeks", 0))
            if key not in baseline_rates:
                continue
            floor = baseline_rates[key] * (1.0 - max_regression)
            if run["options_per_second"] < floor:
                failures.append(
                    f"options={key[0]} workers={key[1]} "
                    f"fused={key[2]}: "
                    f"{run['options_per_second']:.1f} options/s is below "
                    f"{floor:.1f} ({1 - max_regression:.0%} of stored "
                    f"baseline {baseline_rates[key]:.1f})"
                )
    return failures
