"""The paper's published numbers, carried verbatim.

Table I and Table II as printed in the DATE 2014 paper, plus the two
literature comparison rows it cites ([9] Jin et al. 2008 on a Virtex 4,
[10] Wynnyk & Magdon-Ismail 2009 on a Stratix III).  These are the
*targets* every experiment prints next to its reproduced values; they
are never fed back into the models (calibration constants live in
:mod:`repro.devices.calibration` and reference only the operating
points documented there).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_STEPS",
    "PAPER_USE_CASE_OPTIONS_PER_S",
    "PAPER_POWER_BUDGET_W",
    "TABLE1",
    "Table1Row",
    "TABLE2",
    "Table2Column",
    "SATURATION_FPGA_OPTIONS",
    "SATURATION_GPU_B_OPTIONS",
    "KERNEL_A_GPU_MODIFIED_OPTIONS_PER_S",
    "KERNEL_A_GPU_ORIGINAL_OPTIONS_PER_S",
    "TEXT_KERNEL_B_FPGA_OPTIONS_PER_S",
]

#: Time discretisation used throughout the evaluation.
PAPER_STEPS = 1024
#: The use case: 2000 options (one volatility curve) per second.
PAPER_USE_CASE_OPTIONS_PER_S = 2000
#: Power available from the trader's workstation (Section I).
PAPER_POWER_BUDGET_W = 10.0

#: Section V.C: saturation "typically happens at 1e5 priced options";
#: "only the kernel IV.B implemented on the GTX660 has a saturation at
#: a higher number of options (1e6 ...)".
SATURATION_FPGA_OPTIONS = 1e5
SATURATION_GPU_B_OPTIONS = 1e6

#: Section V.C: the modified (result-only readback) kernel IV.A on the
#: GPU reaches 840 options/s vs 58.4 options/s, a 14x factor.
KERNEL_A_GPU_MODIFIED_OPTIONS_PER_S = 840.0
KERNEL_A_GPU_ORIGINAL_OPTIONS_PER_S = 58.4

#: Section V.C prose says "5150 options/s" for kernel IV.B on the DE4
#: while Table II prints 2400; we reproduce the table value and carry
#: the prose figure for the record (see EXPERIMENTS.md).
TEXT_KERNEL_B_FPGA_OPTIONS_PER_S = 5150.0


@dataclass(frozen=True)
class Table1Row:
    """One column of the paper's Table I (resource usage)."""

    kernel: str
    logic_utilization: float
    registers: int
    registers_capacity: int
    memory_bits: int
    memory_bits_capacity: int
    m9k_blocks: int
    m9k_capacity: int
    dsp_18bit: int
    dsp_capacity: int
    clock_mhz: float
    power_w: float


TABLE1 = {
    # "Kernel IV.A": vectorized x2, replicated x3
    "iv_a": Table1Row(
        kernel="IV.A",
        logic_utilization=0.99,
        registers=411 * 1024,
        registers_capacity=415 * 1024,
        memory_bits=10_843 * 1024,
        memory_bits_capacity=20_736 * 1024,
        m9k_blocks=1250,
        m9k_capacity=1250,  # printed so; datasheet (and IV.B column) say 1280
        dsp_18bit=586,
        dsp_capacity=1024,
        clock_mhz=98.27,
        power_w=15.0,
    ),
    # "Kernel IV.B": unrolled x2, vectorized x4
    "iv_b": Table1Row(
        kernel="IV.B",
        logic_utilization=0.66,
        registers=245 * 1024,
        registers_capacity=415 * 1024,
        memory_bits=7_990 * 1024,
        memory_bits_capacity=20_736 * 1024,
        m9k_blocks=1118,
        m9k_capacity=1280,
        dsp_18bit=760,
        dsp_capacity=1024,
        clock_mhz=162.62,
        power_w=17.0,
    ),
}


@dataclass(frozen=True)
class Table2Column:
    """One column of the paper's Table II (performances)."""

    label: str
    platform: str
    precision: str
    options_per_second: float
    rmse_display: str
    options_per_joule: float | None
    tree_nodes_per_second: float


TABLE2 = (
    Table2Column("Kernel IV.A", "FPGA (DE4)", "double", 25, "~1e-3", 1.7, 13e6),
    Table2Column("Kernel IV.A", "GPU (GTX660 Ti)", "double", 53, "0", 0.4, 30e6),
    Table2Column("Kernel IV.B", "FPGA (DE4)", "double", 2400, "~1e-3", 140, 1.3e9),
    Table2Column("Kernel IV.B", "GPU (GTX660 Ti)", "single", 47000, "0", 340, 25e9),
    Table2Column("Kernel IV.B", "GPU (GTX660 Ti)", "double", 8900, "0", 64, 4.7e9),
    Table2Column("Reference sw", "Xeon X5450 (1 core)", "single", 116, "~1e-3", 1.0, 61e6),
    Table2Column("Reference sw", "Xeon X5450 (1 core)", "double", 222, "0", 1.85, 117e6),
    Table2Column("[9] Jin et al.", "Virtex 4 xc4vsx55", "double", 385, "0", None, 202e6),
    Table2Column("[10] Wynnyk", "Stratix III EP3SE260", "double", 1152, "0", None, 576e6),
)
