"""The de Schryver option-pricing-accelerator benchmark (paper ref [4]).

Section II: *"de Schryver, et al. have presented a benchmark to compare
option pricing accelerators between each other ... They define an
option pricing accelerator as: a problem ..., a mathematical model ...,
a solution ... This benchmark includes energy consumption as a
criterion of discrimination between solutions (J/option)."*

This module implements that methodology so the paper's own solutions
can be ranked the way its related work proposes: a
:class:`PricingProblem` (workload + accuracy requirement), a
:class:`PricingModel` (here: CRR binomial), and competing
:class:`Solution` objects evaluated on time-to-solution, accuracy
against the problem's reference, and energy per option.  Ranking
filters by the problem's constraints first and orders the survivors by
J/option — the criterion [4] introduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..api import price
from ..errors import ReproError
from ..finance.validation import rmse
from .tables import render_table

__all__ = [
    "PricingProblem",
    "PricingModel",
    "Solution",
    "SolutionEvaluation",
    "AcceleratorBenchmark",
    "CRR_BINOMIAL_MODEL",
]


@dataclass(frozen=True)
class PricingProblem:
    """What must be priced, how fast and how accurately.

    :param name: short label.
    :param options: the workload (the paper's unit: a 2000-option
        volatility curve).
    :param steps: time discretisation of the reference answer.
    :param max_rmse: accuracy requirement against the double-precision
        reference (the paper treats ~1e-3 as *not* acceptable, so its
        requirement sits below that).
    :param max_power_w: power available at the deployment site
        (Section I's 10 W workstation budget, or a lab's wall power).
    :param min_options_per_second: throughput requirement.
    """

    name: str
    options: tuple
    steps: int = 1024
    max_rmse: float = 1e-6
    max_power_w: float = float("inf")
    min_options_per_second: float = 0.0

    def __post_init__(self) -> None:
        if not self.options:
            raise ReproError("a pricing problem needs a workload")
        if self.max_rmse <= 0:
            raise ReproError("max_rmse must be positive")


@dataclass(frozen=True)
class PricingModel:
    """The mathematical model every solution must implement."""

    name: str
    description: str


#: The paper's model: Cox-Ross-Rubinstein recombining binomial lattice.
CRR_BINOMIAL_MODEL = PricingModel(
    name="CRR binomial",
    description="recombining binomial lattice, backward induction "
                "(Cox, Ross & Rubinstein 1979)",
)


@dataclass(frozen=True)
class Solution:
    """One accelerator configuration entering the benchmark.

    :param name: display label.
    :param price_fn: callable ``(options, steps) -> prices ndarray``
        running the solution's exact arithmetic.
    :param options_per_second: steady-state throughput of the solution.
    :param power_w: average power while computing.
    """

    name: str
    price_fn: Callable
    options_per_second: float
    power_w: float

    @classmethod
    def from_accelerator(cls, accelerator, name: str | None = None) -> "Solution":
        """Wrap a :class:`~repro.core.accelerator.BinomialAccelerator`."""
        estimate = accelerator.performance()
        return cls(
            name=name or accelerator.describe(),
            price_fn=lambda options, steps: price(
                options, steps=steps, device=accelerator).prices,
            options_per_second=estimate.options_per_second,
            power_w=estimate.power_w,
        )


@dataclass(frozen=True)
class SolutionEvaluation:
    """Measured criteria of one solution on one problem."""

    solution: Solution
    rmse: float
    time_s: float
    energy_j: float
    joules_per_option: float
    meets_accuracy: bool
    meets_power: bool
    meets_throughput: bool

    @property
    def feasible(self) -> bool:
        """Whether every problem constraint is satisfied."""
        return self.meets_accuracy and self.meets_power and self.meets_throughput


class AcceleratorBenchmark:
    """Evaluate and rank solutions the way [4] prescribes."""

    def __init__(self, problem: PricingProblem,
                 model: PricingModel = CRR_BINOMIAL_MODEL):
        self.problem = problem
        self.model = model
        self._reference = price(
            list(problem.options), steps=problem.steps).prices

    @property
    def reference(self) -> np.ndarray:
        """The double-precision reference prices of the workload."""
        return self._reference

    def evaluate(self, solution: Solution) -> SolutionEvaluation:
        """Measure one solution on the problem's three criteria."""
        prices = np.asarray(
            solution.price_fn(list(self.problem.options), self.problem.steps)
        )
        if prices.shape != self._reference.shape:
            raise ReproError(
                f"solution {solution.name!r} returned {prices.shape} prices "
                f"for a {self._reference.shape} workload"
            )
        accuracy = rmse(self._reference, prices)
        n = len(self.problem.options)
        time_s = n / solution.options_per_second
        energy = time_s * solution.power_w
        return SolutionEvaluation(
            solution=solution,
            rmse=accuracy,
            time_s=time_s,
            energy_j=energy,
            joules_per_option=energy / n,
            meets_accuracy=accuracy <= self.problem.max_rmse,
            meets_power=solution.power_w <= self.problem.max_power_w,
            meets_throughput=(solution.options_per_second
                              >= self.problem.min_options_per_second),
        )

    def rank(self, solutions: Sequence[Solution]) -> list[SolutionEvaluation]:
        """Evaluate all solutions; feasible ones first, by J/option.

        Infeasible solutions trail, also ordered by J/option, so the
        full field remains visible (as [4]'s design-space plots do).
        """
        evaluations = [self.evaluate(s) for s in solutions]
        evaluations.sort(key=lambda e: (not e.feasible, e.joules_per_option))
        return evaluations

    def report(self, evaluations: Sequence[SolutionEvaluation]) -> str:
        """Rendered ranking table."""
        rows = []
        for rank, ev in enumerate(evaluations, start=1):
            rows.append((
                rank if ev.feasible else "-",
                ev.solution.name,
                f"{ev.solution.options_per_second:,.0f}",
                f"{ev.rmse:.2e}",
                f"{ev.solution.power_w:.0f}",
                f"{ev.joules_per_option * 1000:.2f}",
                "yes" if ev.feasible else
                "no (" + ", ".join(
                    label for label, ok in (
                        ("accuracy", ev.meets_accuracy),
                        ("power", ev.meets_power),
                        ("throughput", ev.meets_throughput),
                    ) if not ok) + ")",
            ))
        return render_table(
            ("rank", "solution", "options/s", "RMSE", "W", "mJ/option",
             "feasible"),
            rows,
            title=f"de Schryver ranking — problem: {self.problem.name}, "
                  f"model: {self.model.name}",
        )
