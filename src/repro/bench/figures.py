"""ASCII figure rendering for the experiment artifacts.

The paper's saturation and convergence behaviours are curve-shaped;
the harness renders them as monospace log-log plots so the
``benchmarks/results/`` artifacts carry the *shape* (knees, slopes,
crossovers) and not just sampled rows.  Pure text by design — the
environment is offline and the artifacts live in the repository.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..errors import ReproError

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def _log_positions(values: Sequence[float], lo: float, hi: float,
                   cells: int) -> list[int]:
    span = math.log10(hi) - math.log10(lo)
    if span <= 0:
        return [0 for _ in values]
    return [
        min(cells - 1,
            max(0, round((math.log10(v) - math.log10(lo)) / span * (cells - 1))))
        for v in values
    ]


def ascii_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Log-log scatter plot of one or more series, as text.

    :param x: shared x coordinates (must be positive).
    :param series: mapping of series name to y values (positive, same
        length as ``x``); each series gets its own marker.
    """
    if not series:
        raise ReproError("ascii_plot needs at least one series")
    if any(v <= 0 for v in x):
        raise ReproError("log-log plot needs positive x values")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ReproError(f"series {name!r} length mismatch")
        if any(v <= 0 for v in ys):
            raise ReproError(f"series {name!r} has non-positive values")

    all_y = [v for ys in series.values() for v in ys]
    x_lo, x_hi = min(x), max(x)
    y_lo, y_hi = min(all_y), max(all_y)

    grid = [[" "] * width for _ in range(height)]
    cols = _log_positions(x, x_lo, x_hi, width)
    legend = []
    for index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        rows = _log_positions(ys, y_lo, y_hi, height)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker

    out = []
    if title:
        out.append(title)
    out.append(f"{y_hi:.3g} (log) {y_label}")
    for line in grid:
        out.append("  |" + "".join(line))
    out.append("  +" + "-" * width)
    out.append(f"  {x_lo:.3g}{' ' * max(1, width - 18)}{x_hi:.3g}  "
               f"(log) {x_label}")
    out.append("  " + "   ".join(legend))
    return "\n".join(out)
