"""Throughput benchmark harness for the batched pricing engine.

Measures the engine against a frozen copy of the *pre-engine* fast
path — the single-threaded simulator exactly as it existed before the
engine work (Python-loop parameter building, list-comprehension leaf
exponents, allocating backward loop) — and writes the result to
``BENCH_engine.json`` so future changes have a perf trajectory to
regress against.

The harness also cross-checks correctness on every run: engine prices
must be bit-identical to the current simulator, and must agree with
the frozen baseline to double-precision noise (the baseline builds
lattice constants with scalar ``math`` calls, the vectorised builders
with numpy ufuncs — same math, last-ulp differences).

``check_throughput_regression`` implements the CI gate: it compares a
fresh run against a stored baseline file and reports every
configuration whose throughput dropped more than the allowed fraction.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..core.batch_sim import simulate_kernel_a_batch, simulate_kernel_b_batch
from ..core.faithful_math import EXACT_DOUBLE, MathProfile
from ..core.kernel_a import build_leaves_a
from ..core.metrics import nodes_per_option
from ..engine import EngineConfig, PricingEngine
from ..errors import ReproError
from ..finance.lattice import LatticeFamily, build_lattice_params
from ..finance.market import generate_batch
from ..finance.options import Option
from ..obs import keys as obs_keys
from .gate import check_throughput_regression, make_envelope, write_benchmark

__all__ = [
    "BENCH_SCHEMA",
    "baseline_simulate_kernel_a",
    "baseline_simulate_kernel_b",
    "run_benchmark",
    "write_benchmark",
    "check_throughput_regression",
]

#: Schema tag written into every BENCH_engine.json (see docs/paper_mapping.md).
BENCH_SCHEMA = "repro-engine-bench/v1"


# --------------------------------------------------------------------------
# Frozen pre-engine fast path (the benchmark's baseline)
# --------------------------------------------------------------------------


def _baseline_params_b(options: Sequence[Option], steps: int,
                       family: LatticeFamily) -> np.ndarray:
    """`build_params_b` as it was before vectorisation: a Python loop."""
    rows = np.empty((len(options), 7), dtype=np.float64)
    for i, option in enumerate(options):
        lattice = build_lattice_params(option, steps, family)
        rows[i] = (
            option.spot,
            lattice.up,
            lattice.down,
            lattice.discounted_p_up,
            lattice.discounted_p_down,
            option.strike,
            option.option_type.sign,
        )
    return rows


def _baseline_params_a(options: Sequence[Option], steps: int,
                       family: LatticeFamily) -> np.ndarray:
    """`build_params_a` as it was before vectorisation: a Python loop."""
    rows = np.empty((len(options), 5), dtype=np.float64)
    for i, option in enumerate(options):
        lattice = build_lattice_params(option, steps, family)
        rows[i] = (
            lattice.discounted_p_up,
            lattice.discounted_p_down,
            lattice.down,
            option.strike,
            option.option_type.sign,
        )
    return rows


def baseline_simulate_kernel_b(
    options: Sequence[Option],
    steps: int,
    profile: MathProfile = EXACT_DOUBLE,
    family: LatticeFamily = LatticeFamily.CRR,
) -> np.ndarray:
    """The pre-engine ``simulate_kernel_b_batch``, frozen verbatim.

    Python-loop parameter building, list-comprehension exponents, and
    a backward loop that allocates fresh temporaries every iteration —
    the path the engine's speedup is measured against.
    """
    if steps < 2:
        raise ReproError("kernel IV.B needs at least 2 steps")
    if not options:
        raise ReproError("empty option batch")
    params = _baseline_params_b(options, steps, family)
    cast = profile.cast

    s0 = cast(params[:, 0:1])
    up = params[:, 1:2]
    down = cast(params[:, 2:3])
    rp = cast(params[:, 3:4])
    rq = cast(params[:, 4:5])
    strike = cast(params[:, 5:6])
    sign = cast(params[:, 6:7])

    exponents = np.array([float(steps - 2 * k) for k in range(steps)]
                         + [float(-steps)])
    s = cast(s0 * profile.pow_(up, exponents[None, :]))
    payoff = cast(sign * (s - strike))
    v = np.where(payoff > 0.0, payoff, cast(0.0)).astype(profile.dtype)
    s = s[:, :steps]

    for t in range(steps - 1, -1, -1):
        active = t + 1
        s_active = cast(down * s[:, :active])
        continuation = cast(
            cast(rp * v[:, :active]) + cast(rq * v[:, 1:active + 1])
        )
        intrinsic = cast(sign * (s_active - strike))
        v[:, :active] = np.where(
            continuation > intrinsic, continuation, intrinsic
        )
        s[:, :active] = s_active

    return v[:, 0].astype(np.float64)


def baseline_simulate_kernel_a(
    options: Sequence[Option],
    steps: int,
    profile: MathProfile = EXACT_DOUBLE,
    family: LatticeFamily = LatticeFamily.CRR,
) -> np.ndarray:
    """The pre-engine ``simulate_kernel_a_batch``, frozen verbatim."""
    if steps < 2:
        raise ReproError("kernel IV.A needs at least 2 steps")
    if not options:
        raise ReproError("empty option batch")
    params = _baseline_params_a(options, steps, family)
    cast = profile.cast

    rp = cast(params[:, 0:1])
    rq = cast(params[:, 1:2])
    down = cast(params[:, 2:3])
    strike = cast(params[:, 3:4])
    sign = cast(params[:, 4:5])

    leaf_pairs = [build_leaves_a(o, steps, family) for o in options]
    s = cast(np.stack([pair[0] for pair in leaf_pairs]))
    v = cast(np.stack([pair[1] for pair in leaf_pairs])).astype(profile.dtype)

    for t in range(steps - 1, -1, -1):
        active = t + 1
        s_active = cast(down * s[:, :active])
        continuation = cast(
            cast(rp * v[:, :active]) + cast(rq * v[:, 1:active + 1])
        )
        intrinsic = cast(sign * (s_active - strike))
        v = np.where(continuation > intrinsic, continuation, intrinsic).astype(
            profile.dtype
        )
        s = s_active

    return v[:, 0].astype(np.float64)


_BASELINES = {
    "iv_a": baseline_simulate_kernel_a,
    "iv_b": baseline_simulate_kernel_b,
}
_SIMULATORS = {
    "iv_a": simulate_kernel_a_batch,
    "iv_b": simulate_kernel_b_batch,
}


# --------------------------------------------------------------------------
# Benchmark driver
# --------------------------------------------------------------------------


def run_benchmark(
    options_counts: Sequence[int] = (1024, 4096),
    steps: int = 1024,
    workers_settings: Sequence[int] = (1, 4),
    kernel: str = "iv_b",
    profile: MathProfile = EXACT_DOUBLE,
    family: LatticeFamily = LatticeFamily.CRR,
    seed: int = 20140324,
    backend: str = "numpy",
    tracer=None,
) -> dict:
    """Measure engine throughput against the frozen pre-engine path.

    For each batch size: time the baseline once, then one engine run
    per ``workers`` setting, asserting bit-identity with the current
    simulator and double-precision agreement with the baseline.
    Returns the JSON-ready result document (see ``BENCH_SCHEMA``); the
    per-run stats use exactly the :data:`repro.obs.keys.STATS_KEYS`
    schema, declared in the document's ``stats_schema`` field.

    ``backend`` selects the engine's roll-loop backend (see
    :mod:`repro.backends`).  The simulator reference is always priced
    on the NumPy path, so the bit-identity assertion doubles as the
    in-run cross-backend parity gate: a compiled backend that drifts
    by a single ULP fails the benchmark.

    Pass a :class:`repro.obs.trace.Tracer` to record every engine run
    as its own root span tree (one root per measured configuration;
    the baseline timing is never traced — it predates the engine).
    """
    if kernel not in _BASELINES:
        raise ReproError(f"benchmark supports kernels "
                         f"{tuple(_BASELINES)}, got {kernel!r}")
    results = []
    for n_options in options_counts:
        batch = list(generate_batch(n_options=n_options, seed=seed).options)

        start = time.perf_counter()
        baseline_prices = _BASELINES[kernel](batch, steps, profile, family)
        baseline_wall = time.perf_counter() - start
        tree_nodes = n_options * (nodes_per_option(steps) + steps + 1)

        simulator_prices = _SIMULATORS[kernel](batch, steps, profile, family)
        max_diff = float(np.max(np.abs(simulator_prices - baseline_prices)))
        if not np.allclose(simulator_prices, baseline_prices,
                           rtol=1e-9, atol=1e-9):
            raise ReproError(
                f"engine fast path disagrees with the frozen baseline "
                f"beyond double-precision noise (max abs diff {max_diff:.3e})"
            )

        runs = []
        for workers in workers_settings:
            with PricingEngine(kernel=kernel, profile=profile, family=family,
                               config=EngineConfig(workers=workers,
                                                   backend=backend),
                               tracer=tracer) as engine:
                result = engine.run(batch, steps)
            if not np.array_equal(result.prices, simulator_prices):
                raise ReproError(
                    f"engine (workers={workers}, backend="
                    f"{result.stats.backend}) is not bit-identical to "
                    f"the NumPy-path simulator"
                )
            stats = result.stats.as_dict()
            stats["speedup_vs_baseline"] = (
                result.stats.options_per_second * baseline_wall / n_options
            )
            runs.append(stats)

        results.append({
            "options": n_options,
            "baseline": {
                "label": "pre-engine single-threaded simulator",
                "wall_time_s": baseline_wall,
                "options_per_second": n_options / baseline_wall,
                "tree_nodes_per_second": tree_nodes / baseline_wall,
            },
            "parity": {
                "bit_identical_to_simulator": True,
                "max_abs_diff_vs_baseline": max_diff,
            },
            "runs": runs,
        })

    return make_envelope(
        BENCH_SCHEMA,
        obs_keys.STATS_SCHEMA,
        config={
            "kernel": kernel,
            "profile": profile.name,
            "family": family.value,
            "steps": steps,
            "seed": seed,
            "backend": backend,
        },
        results=results,
    )
