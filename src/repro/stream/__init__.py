"""``repro.stream`` — streaming portfolio risk on ticking market data.

The paper's end goal is continuous low-latency risk evaluation; this
package is that workload shape on top of the batch engine: tick
sources (recorded replay and seeded synthetic markets), a
tolerance-gated :class:`PositionBook`, and a :class:`StreamRunner`
that drains dirty instruments into coalesced
:class:`~repro.api.PricingRequest` batches through the in-process
:class:`~repro.service.PricingService`, publishing sequence-numbered
portfolio greeks/P&L aggregates.  ``docs/streaming.md`` documents the
tick model, tolerance semantics and the bitwise-parity contract
against :func:`full_repricing_oracle`.
"""

from .book import (
    AGGREGATE_COLUMNS,
    Position,
    PositionBook,
    RiskAggregate,
    Tolerance,
)
from .loop import (
    AggregateUpdate,
    StreamConfig,
    StreamMetrics,
    StreamRunner,
    StreamStats,
    full_repricing_oracle,
)
from .ticks import (
    TICK_FIELDS,
    TICKS_SCHEMA,
    ReplayTickSource,
    SyntheticTickSource,
    Tick,
    read_ticks,
    write_ticks,
)

__all__ = [
    "AGGREGATE_COLUMNS",
    "AggregateUpdate",
    "Position",
    "PositionBook",
    "ReplayTickSource",
    "RiskAggregate",
    "StreamConfig",
    "StreamMetrics",
    "StreamRunner",
    "StreamStats",
    "SyntheticTickSource",
    "TICKS_SCHEMA",
    "TICK_FIELDS",
    "Tick",
    "Tolerance",
    "full_repricing_oracle",
    "read_ticks",
    "write_ticks",
]
