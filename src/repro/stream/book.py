"""The live position book: tolerance-gated dirty marking.

A :class:`PositionBook` holds quantities of priced instruments and two
views of each instrument's market inputs:

* the **live** inputs — whatever the tick feed last said;
* the **effective** inputs — the inputs of the last revaluation, i.e.
  what the currently published risk numbers were computed *from*.

A tick moves the live view and marks the instrument dirty only when
the move exceeds its per-field :class:`Tolerance` **relative to the
effective view** — small moves accumulate until they matter, so drift
cannot hide below the gate forever.  The revaluation loop drains the
dirty set into pricing batches and commits results back, which
promotes the drained live inputs to effective.

Aggregation is deliberately shape-stable: columns are assembled in
book insertion order and reduced with the same NumPy ops every time,
so two books that priced the same inputs publish **bitwise-identical**
aggregates — the property the full-repricing oracle checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..api import GREEKS_COLUMNS
from ..errors import StreamError
from ..finance.options import Option
from .ticks import TICK_FIELDS, Tick

__all__ = [
    "AGGREGATE_COLUMNS",
    "PositionBook",
    "Position",
    "RiskAggregate",
    "Tolerance",
]

#: Value column plus the five greeks, in aggregate order.
AGGREGATE_COLUMNS = ("value",) + GREEKS_COLUMNS


@dataclass(frozen=True)
class Tolerance:
    """Dead-band for one market-data field.

    A new value is *material* when ``|new - reference| >
    abs_tol + rel_tol * |reference|`` — the usual combined
    absolute/relative test, with the **effective** (last-repriced)
    value as the reference.  The default (both zero) makes every move
    material, i.e. tolerance gating off.
    """

    abs_tol: float = 0.0
    rel_tol: float = 0.0

    def __post_init__(self):
        for name in ("abs_tol", "rel_tol"):
            value = getattr(self, name)
            if not (math.isfinite(value) and value >= 0.0):
                raise StreamError(
                    f"{name} must be finite and >= 0, got {value}")

    def material(self, reference: float, value: float) -> bool:
        return abs(value - reference) > (self.abs_tol
                                         + self.rel_tol * abs(reference))


@dataclass(frozen=True)
class Position:
    """One holding: an instrument id, its contract, size and depth.

    :param instrument_id: unique key ticks address the position by.
    :param option: the contract; its ``spot``/``volatility``/``rate``
        seed the initial live and effective inputs.
    :param quantity: signed holding size (negative = short).
    :param steps: binomial tree depth this instrument is priced at.
    """

    instrument_id: str
    option: Option
    quantity: float = 1.0
    steps: int = 512

    def __post_init__(self):
        if not self.instrument_id:
            raise StreamError("instrument_id must be non-empty")
        if not math.isfinite(self.quantity):
            raise StreamError(
                f"quantity must be finite, got {self.quantity}")
        if self.steps < 1:
            raise StreamError(f"steps must be >= 1, got {self.steps}")


class _Slot:
    """Mutable per-instrument state (internal to the book)."""

    __slots__ = ("position", "live", "effective", "dirty", "values")

    def __init__(self, position: Position):
        self.position = position
        inputs = {"spot": float(position.option.spot),
                  "volatility": float(position.option.volatility),
                  "rate": float(position.option.rate)}
        self.live = dict(inputs)
        self.effective = dict(inputs)
        self.dirty = True  # never priced yet
        self.values: "dict[str, float] | None" = None

    def option_at(self, inputs: "dict[str, float]") -> Option:
        return replace(self.position.option, **inputs)


class RiskAggregate(dict):
    """``{column: float}`` over :data:`AGGREGATE_COLUMNS` (qty-weighted)."""

    __slots__ = ()


class PositionBook:
    """Positions keyed by instrument id, with tolerance dirty marking.

    :param tolerances: per-field :class:`Tolerance` map (missing
        fields default to zero tolerance, i.e. every move is
        material).  One map applies book-wide.

    Not thread-safe by design: the revaluation loop is the single
    writer, exactly like the engine's scheduler owns its queues.
    """

    def __init__(self, tolerances: "dict[str, Tolerance] | None" = None):
        tolerances = dict(tolerances or {})
        for field in tolerances:
            if field not in TICK_FIELDS:
                raise StreamError(
                    f"tolerance for unknown field {field!r} "
                    f"(expected one of {TICK_FIELDS})")
        zero = Tolerance()
        self._tolerances = {field: tolerances.get(field, zero)
                            for field in TICK_FIELDS}
        self._slots: "dict[str, _Slot]" = {}

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, instrument_id: str) -> bool:
        return instrument_id in self._slots

    @property
    def instruments(self) -> "tuple[str, ...]":
        return tuple(self._slots)

    def positions(self) -> "tuple[Position, ...]":
        return tuple(slot.position for slot in self._slots.values())

    def add(self, position: Position) -> None:
        if position.instrument_id in self._slots:
            raise StreamError(
                f"instrument {position.instrument_id!r} is already in "
                f"the book")
        self._slots[position.instrument_id] = _Slot(position)

    # -- tick ingestion -------------------------------------------------

    def apply(self, tick: Tick) -> str:
        """Apply one tick to the live view; returns its disposition.

        ``"marked"`` — the move was material and flipped the
        instrument clean→dirty; ``"pending"`` — the instrument was
        already dirty (the next drain picks up the newest live inputs
        regardless of this move's size); ``"suppressed"`` — the move
        stayed inside tolerance of the effective value and no
        revaluation is owed.
        """
        slot = self._slots.get(tick.instrument_id)
        if slot is None:
            raise StreamError(
                f"tick for unknown instrument {tick.instrument_id!r}")
        slot.live[tick.field] = float(tick.value)
        if slot.dirty:
            return "pending"
        reference = slot.effective[tick.field]
        if self._tolerances[tick.field].material(reference, tick.value):
            slot.dirty = True
            return "marked"
        return "suppressed"

    # -- revaluation handshake -----------------------------------------

    def dirty_ids(self) -> "tuple[str, ...]":
        return tuple(name for name, slot in self._slots.items()
                     if slot.dirty)

    def drain_dirty(self):
        """Snapshot and clear the dirty set.

        Returns ``[(instrument_id, option_at_live_inputs, steps)]`` in
        book order.  The caller prices the returned options and
        commits each result back via :meth:`commit`; the snapshot
        option carries the exact inputs that must become effective.
        """
        drained = []
        for name, slot in self._slots.items():
            if not slot.dirty:
                continue
            slot.dirty = False
            drained.append((name, slot.option_at(slot.live),
                            slot.position.steps))
        return drained

    def commit(self, instrument_id: str, option: Option, price: float,
               greeks: "dict[str, float] | None" = None) -> None:
        """Record one revaluation result.

        ``option`` must be the drained snapshot the price was computed
        from — its inputs become the new effective view.  ``greeks``
        maps :data:`~repro.api.GREEKS_COLUMNS` names (missing or None
        = price-only task, greeks recorded as 0.0).
        """
        slot = self._slots.get(instrument_id)
        if slot is None:
            raise StreamError(
                f"commit for unknown instrument {instrument_id!r}")
        slot.effective = {"spot": float(option.spot),
                          "volatility": float(option.volatility),
                          "rate": float(option.rate)}
        values = {"value": float(price)}
        for column in GREEKS_COLUMNS:
            values[column] = float((greeks or {}).get(column, 0.0))
        slot.values = values

    # -- aggregation ----------------------------------------------------

    def effective_inputs(self, instrument_id: str) -> "dict[str, float]":
        return dict(self._slots[instrument_id].effective)

    def live_inputs(self, instrument_id: str) -> "dict[str, float]":
        return dict(self._slots[instrument_id].live)

    def effective_option(self, instrument_id: str) -> Option:
        """The contract at its as-of-last-revaluation inputs."""
        slot = self._slots[instrument_id]
        return slot.option_at(slot.effective)

    def aggregate(self) -> RiskAggregate:
        """Quantity-weighted portfolio totals over every position.

        Columns are reduced in book insertion order with the same
        NumPy dot product every time, so identical per-instrument
        values always aggregate bitwise-identically.

        :raises StreamError: some position has never been priced.
        """
        unpriced = [name for name, slot in self._slots.items()
                    if slot.values is None]
        if unpriced:
            raise StreamError(
                f"cannot aggregate: {len(unpriced)} position(s) never "
                f"priced (first: {unpriced[0]!r})")
        slots = list(self._slots.values())
        quantity = np.array([slot.position.quantity for slot in slots],
                            dtype=np.float64)
        out = RiskAggregate()
        for column in AGGREGATE_COLUMNS:
            values = np.array([slot.values[column] for slot in slots],
                              dtype=np.float64)
            out[column] = float(quantity @ values)
        return out
