"""The incremental revaluation loop and its full-repricing oracle.

:class:`StreamRunner` connects a tick source, a
:class:`~repro.stream.PositionBook` and the in-process
:class:`~repro.service.PricingService`: ticks move the book's live
inputs, the tolerance gate marks instruments dirty, and every
``batch_ticks`` ticks the runner drains the dirty set into **one**
coalesced greeks/price :class:`~repro.api.PricingRequest`, commits the
results, and publishes a sequence-numbered portfolio aggregate
(:class:`AggregateUpdate`).  The service's content-keyed cache
invalidates moved instruments for free — a moved input is a new
request key — while unmoved neighbours that re-enter a batch hit it.

Correctness is anchored by :func:`full_repricing_oracle`: pricing the
whole book from scratch at its *effective* (as-of-last-revaluation)
inputs must reproduce the streamed aggregate **bitwise**, because the
engine's per-option math is row-independent (batch composition cannot
move a ULP — the engine determinism contract) and both paths reduce
columns with the same dot product over the same book order.

Latency is measured tick-to-risk: from the moment a materialised tick
is applied to the moment the aggregate covering it is published.
Suppressed ticks never produce an aggregate, so they carry no
latency sample — they are counted separately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..api import GREEKS_COLUMNS, PricingRequest, greeks as api_greeks, \
    price as api_price
from ..devices.base import Precision
from ..errors import StreamError
from ..finance.lattice import LatticeFamily
from ..obs import keys
from ..obs.metrics import MetricsRegistry
from .book import AGGREGATE_COLUMNS, PositionBook, RiskAggregate

__all__ = [
    "AggregateUpdate",
    "StreamConfig",
    "StreamMetrics",
    "StreamRunner",
    "StreamStats",
    "full_repricing_oracle",
]

#: Tick-to-risk latency buckets (seconds): sub-millisecond tiles up to
#: multi-second stalls.
_LATENCY_BUCKETS = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.025, 0.05,
                    0.1, 0.25, 0.5, 1.0, 5.0)


@dataclass(frozen=True)
class StreamConfig:
    """Pricing knobs of one streaming run (mirrors the request fields).

    :param task: ``"greeks"`` publishes all six aggregate columns;
        ``"price"`` publishes portfolio value only (greeks columns
        aggregate to 0.0).
    :param batch_ticks: revalue after this many applied ticks (and
        always once more at end of stream).
    :param reval_timeout_s: how long to wait on one revaluation batch.
    """

    kernel: str = "iv_b"
    precision: str = Precision.DOUBLE
    family: LatticeFamily = LatticeFamily.CRR
    backend: str = "auto"
    task: str = "greeks"
    batch_ticks: int = 8
    reval_timeout_s: float = 60.0

    def __post_init__(self):
        if self.task not in ("price", "greeks"):
            raise StreamError(
                f"task must be 'price' or 'greeks', got {self.task!r}")
        if self.batch_ticks < 1:
            raise StreamError(
                f"batch_ticks must be >= 1, got {self.batch_ticks}")
        if not self.reval_timeout_s > 0:
            raise StreamError(
                f"reval_timeout_s must be > 0, got {self.reval_timeout_s}")


@dataclass(frozen=True)
class AggregateUpdate:
    """One published portfolio-risk snapshot.

    :param seq: 1-based publication sequence number.
    :param ts: stream time of the last tick folded in (0.0 for the
        initial whole-book valuation).
    :param columns: quantity-weighted totals over
        :data:`~repro.stream.AGGREGATE_COLUMNS`.
    :param pnl: change of ``columns["value"]`` since the previous
        update (0.0 on the first).
    :param repriced: instruments revalued for this update.
    :param instruments: book size at publication.
    """

    seq: int
    ts: float
    columns: RiskAggregate
    pnl: float
    repriced: int
    instruments: int

    @property
    def value(self) -> float:
        return self.columns["value"]

    def as_dict(self) -> dict:
        """JSON-ready form; column floats as hex for bitwise fidelity."""
        return {
            "seq": self.seq,
            "ts": self.ts,
            "columns": {name: float(value).hex()
                        for name, value in self.columns.items()},
            "pnl": float(self.pnl).hex(),
            "repriced": self.repriced,
            "instruments": self.instruments,
        }


class StreamMetrics:
    """Stream-scoped metrics (same pattern as ``ServiceMetrics``)."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        reg = self.registry
        self.ticks = reg.counter(
            keys.STREAM_TICKS_TOTAL, "Market-data ticks applied")
        self.suppressed_ticks = reg.counter(
            keys.STREAM_SUPPRESSED_TICKS_TOTAL,
            "Ticks whose move stayed inside tolerance (revaluation "
            "suppressed)")
        self.dirty_marks = reg.counter(
            keys.STREAM_DIRTY_MARKS_TOTAL,
            "Clean->dirty transitions caused by material ticks")
        self.revaluations = reg.counter(
            keys.STREAM_REVALUATIONS_TOTAL,
            "Instruments repriced by the revaluation loop")
        self.reval_batches = reg.counter(
            keys.STREAM_REVAL_BATCHES_TOTAL,
            "Coalesced revaluation batches submitted")
        self.aggregates = reg.counter(
            keys.STREAM_AGGREGATES_TOTAL,
            "Portfolio aggregates published")
        self.instruments = reg.gauge(
            keys.STREAM_INSTRUMENTS, "Positions in the book")
        self.tick_to_risk = reg.histogram(
            keys.STREAM_TICK_TO_RISK_SECONDS,
            "Tick applied -> covering aggregate published",
            buckets=_LATENCY_BUCKETS)
        for handle in (self.ticks, self.suppressed_ticks,
                       self.dirty_marks, self.revaluations,
                       self.reval_batches, self.aggregates):
            handle.inc(0.0)
        self.instruments.set(0.0)


@dataclass(frozen=True)
class StreamStats:
    """Snapshot of one runner under ``repro-stream-stats/v7``
    (:data:`repro.obs.keys.STREAM_STATS_KEYS`)."""

    ticks: int = 0
    suppressed_ticks: int = 0
    dirty_marks: int = 0
    revaluations: int = 0
    reval_batches: int = 0
    aggregates: int = 0
    instruments: int = 0
    mean_tick_to_risk_s: float = 0.0

    @classmethod
    def from_metrics(cls, metrics: StreamMetrics) -> "StreamStats":
        registry = metrics.registry
        counts = {
            stat: int(registry.value(metric))
            for stat, metric in keys.STREAM_STATS_TO_METRIC.items()
        }
        latency = metrics.tick_to_risk
        return cls(
            instruments=int(metrics.instruments.value()),
            mean_tick_to_risk_s=((latency.sum / latency.count)
                                 if latency.count else 0.0),
            **counts,
        )

    def as_dict(self) -> dict:
        """JSON-ready snapshot in :data:`STREAM_STATS_KEYS` order."""
        out = {"schema": keys.STREAM_STATS_SCHEMA}
        out.update({key: getattr(self, key)
                    for key in keys.STREAM_STATS_KEYS})
        return out


@dataclass
class _PendingLatency:
    """Arrival times of ticks awaiting their covering aggregate."""

    arrivals: "list[float]" = field(default_factory=list)


class StreamRunner:
    """Drive a position book through a tick stream incrementally.

    :param book: the positions and their tolerance gate.
    :param service: an open :class:`~repro.service.PricingService`
        (caller keeps ownership) that executes revaluation batches.
    :param config: pricing/batching knobs.
    :param on_aggregate: optional callback invoked with each published
        :class:`AggregateUpdate` (after it is appended to
        :attr:`published`).
    """

    def __init__(self, book: PositionBook, service, *,
                 config: StreamConfig = StreamConfig(),
                 on_aggregate=None):
        if len(book) == 0:
            raise StreamError("the position book is empty")
        self.book = book
        self.service = service
        self.config = config
        self.on_aggregate = on_aggregate
        self.metrics = StreamMetrics()
        self.metrics.instruments.set(float(len(book)))
        #: every published update, in sequence order
        self.published: "list[AggregateUpdate]" = []
        #: tick-to-risk latency samples (seconds), one per covered tick
        self.latencies: "list[float]" = []
        self._pending = _PendingLatency()
        self._ticks_since_reval = 0
        self._last_ts = 0.0
        self._last_value: "float | None" = None

    # -- tick ingestion -------------------------------------------------

    def apply(self, tick) -> str:
        """Apply one tick; returns the book's disposition
        (``"marked"``/``"pending"``/``"suppressed"``)."""
        arrival = time.monotonic()
        state = self.book.apply(tick)
        self.metrics.ticks.inc()
        self._last_ts = max(self._last_ts, tick.ts)
        if state == "suppressed":
            self.metrics.suppressed_ticks.inc()
            return state
        if state == "marked":
            self.metrics.dirty_marks.inc()
        self._pending.arrivals.append(arrival)
        self._ticks_since_reval += 1
        return state

    def process(self, ticks) -> "list[AggregateUpdate]":
        """Run a whole tick stream; returns the updates it published.

        Revalues every ``config.batch_ticks`` materialised ticks and
        once more at end of stream (so the final aggregate always
        reflects every material tick).  The book's initial whole-book
        valuation happens on the first revaluation.
        """
        start = len(self.published)
        for tick in ticks:
            self.apply(tick)
            if self._ticks_since_reval >= self.config.batch_ticks:
                self.revalue()
        self.revalue()
        return self.published[start:]

    # -- revaluation ----------------------------------------------------

    def revalue(self) -> "AggregateUpdate | None":
        """Drain the dirty set, reprice it, publish one aggregate.

        Returns ``None`` (and publishes nothing) when nothing is
        dirty — a no-op heartbeat, not an error.
        """
        drained = self.book.drain_dirty()
        if not drained:
            return None
        options = tuple(option for _name, option, _steps in drained)
        steps = tuple(depth for _name, _option, depth in drained)
        steps_spec = steps[0] if len(set(steps)) == 1 else steps
        request = PricingRequest(
            options=options, steps=steps_spec,
            kernel=self.config.kernel, precision=self.config.precision,
            family=self.config.family, task=self.config.task,
            strict=True, backend=self.config.backend)
        result = self.service.submit(request).result(
            timeout=self.config.reval_timeout_s)
        for index, (name, option, _depth) in enumerate(drained):
            greek_values = None
            if self.config.task == "greeks":
                greek_values = {column: float(getattr(result, column)[index])
                                for column in GREEKS_COLUMNS}
            self.book.commit(name, option, float(result.prices[index]),
                             greek_values)
        self.metrics.revaluations.inc(float(len(drained)))
        self.metrics.reval_batches.inc()
        return self._publish(len(drained))

    def _publish(self, repriced: int) -> AggregateUpdate:
        columns = self.book.aggregate()
        value = columns["value"]
        pnl = 0.0 if self._last_value is None else value - self._last_value
        self._last_value = value
        update = AggregateUpdate(
            seq=len(self.published) + 1, ts=self._last_ts,
            columns=columns, pnl=pnl, repriced=repriced,
            instruments=len(self.book))
        self.published.append(update)
        self.metrics.aggregates.inc()
        published_at = time.monotonic()
        for arrival in self._pending.arrivals:
            sample = max(0.0, published_at - arrival)
            self.metrics.tick_to_risk.observe(sample)
            self.latencies.append(sample)
        self._pending.arrivals.clear()
        self._ticks_since_reval = 0
        if self.on_aggregate is not None:
            self.on_aggregate(update)
        return update

    def stats(self) -> StreamStats:
        return StreamStats.from_metrics(self.metrics)


def full_repricing_oracle(book: PositionBook,
                          config: StreamConfig = StreamConfig(),
                          ) -> RiskAggregate:
    """Portfolio aggregate by pricing the whole book from scratch.

    Every position is repriced at its **effective** inputs through the
    plain :func:`repro.api.price`/:func:`repro.api.greeks` façade — no
    service, no cache, no incremental state — and reduced with the
    same dot product the book uses.  Because the engine's per-option
    math is row-independent and backends are bit-identical, the result
    must equal the streamed aggregate **bitwise**; any divergence
    means the incremental path lost or corrupted state.
    """
    positions = book.positions()
    if not positions:
        raise StreamError("the position book is empty")
    options = tuple(book.effective_option(p.instrument_id)
                    for p in positions)
    steps = tuple(p.steps for p in positions)
    steps_spec = steps[0] if len(set(steps)) == 1 else steps
    common = dict(steps=steps_spec, kernel=config.kernel,
                  precision=config.precision, family=config.family,
                  backend=config.backend, strict=True)
    quantity = np.array([p.quantity for p in positions], dtype=np.float64)
    out = RiskAggregate()
    if config.task == "greeks":
        result = api_greeks(options, **common)
        out["value"] = float(
            quantity @ np.asarray(result.prices, dtype=np.float64))
        for column in GREEKS_COLUMNS:
            out[column] = float(quantity @ np.asarray(
                getattr(result, column), dtype=np.float64))
    else:
        result = api_price(options, **common)
        out["value"] = float(
            quantity @ np.asarray(result.prices, dtype=np.float64))
        for column in GREEKS_COLUMNS:
            out[column] = float(
                quantity @ np.zeros(len(positions), dtype=np.float64))
    assert tuple(out) == AGGREGATE_COLUMNS
    return out
