"""Tick sources: recorded replay files and seeded synthetic markets.

A *tick* is one market-data update — ``(instrument_id, field, value,
ts)`` — for one pricing input of one instrument.  Two sources produce
them:

* :class:`ReplayTickSource` reads a recorded tick file
  (:func:`write_ticks` / :func:`read_ticks`, JSON lines with every
  float as :meth:`float.hex`), so a captured session replays
  **bitwise**: the same file always yields the same tick values down
  to the last ULP, which is what makes streamed aggregates
  reproducible across runs and machines.
* :class:`SyntheticTickSource` generates a seeded market: GBM spot
  paths with occasional jumps, mean-reverting volatility drift and a
  slow rate random walk.  Each iteration rebuilds its RNG from the
  seed, so iterating the same source twice yields the identical tick
  stream — a synthetic source is its own replay file.

Both sources are plain iterables of :class:`Tick`; the revaluation
loop does not care which one feeds it.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import StreamError

__all__ = [
    "TICKS_SCHEMA",
    "TICK_FIELDS",
    "Tick",
    "ReplayTickSource",
    "SyntheticTickSource",
    "read_ticks",
    "write_ticks",
]

#: Version tag of the recorded tick-file format.
TICKS_SCHEMA = "repro-ticks/v1"

#: The pricing inputs a tick may update.  Strike/maturity/exercise are
#: contract terms, not market data — they never tick.
TICK_FIELDS = ("spot", "volatility", "rate")

#: Fields that must stay strictly positive to build a valid Option.
_POSITIVE_FIELDS = frozenset({"spot", "volatility"})


@dataclass(frozen=True)
class Tick:
    """One market-data update for one input of one instrument.

    :param instrument_id: the position-book key this update addresses.
    :param field: which pricing input moved (one of
        :data:`TICK_FIELDS`).
    :param value: the new level (not a delta).
    :param ts: stream time in seconds since the start of the feed
        (monotonically non-decreasing within a source).
    """

    instrument_id: str
    field: str
    value: float
    ts: float

    def __post_init__(self):
        if self.field not in TICK_FIELDS:
            raise StreamError(
                f"unknown tick field {self.field!r} "
                f"(expected one of {TICK_FIELDS})")
        if not math.isfinite(self.value):
            raise StreamError(
                f"tick value for {self.instrument_id}/{self.field} "
                f"must be finite, got {self.value}")
        if self.field in _POSITIVE_FIELDS and not self.value > 0.0:
            raise StreamError(
                f"tick value for {self.instrument_id}/{self.field} "
                f"must be > 0, got {self.value}")
        if not math.isfinite(self.ts) or self.ts < 0.0:
            raise StreamError(
                f"tick ts must be finite and >= 0, got {self.ts}")


def write_ticks(path, ticks) -> Path:
    """Record ``ticks`` to ``path`` (JSON lines, floats as hex).

    The first line is a schema header; each following line is one
    tick.  ``float.hex`` round-trips bitwise, so replaying the file
    reproduces the exact doubles that were recorded.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"schema": TICKS_SCHEMA}) + "\n")
        for tick in ticks:
            handle.write(json.dumps({
                "i": tick.instrument_id,
                "f": tick.field,
                "v": float(tick.value).hex(),
                "t": float(tick.ts).hex(),
            }) + "\n")
    return path


def read_ticks(path) -> "tuple[Tick, ...]":
    """Load a tick file written by :func:`write_ticks`."""
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise StreamError(f"cannot read tick file {path}: {exc}") from exc
    if not lines:
        raise StreamError(f"tick file {path} is empty (no schema header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise StreamError(
            f"tick file {path} has a malformed header: {exc}") from exc
    schema = header.get("schema") if isinstance(header, dict) else None
    if schema != TICKS_SCHEMA:
        raise StreamError(
            f"tick file {path} declares schema {schema!r}, "
            f"expected {TICKS_SCHEMA!r}")
    ticks = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            ticks.append(Tick(
                instrument_id=str(record["i"]),
                field=str(record["f"]),
                value=float.fromhex(record["v"]),
                ts=float.fromhex(record["t"]),
            ))
        except (KeyError, ValueError, TypeError) as exc:
            raise StreamError(
                f"tick file {path} line {lineno} is malformed: "
                f"{exc}") from exc
    return tuple(ticks)


class ReplayTickSource:
    """Iterable over a recorded tick file (bitwise-faithful replay)."""

    def __init__(self, path):
        self.path = Path(path)
        self._ticks = read_ticks(self.path)

    def __len__(self) -> int:
        return len(self._ticks)

    def __iter__(self):
        return iter(self._ticks)


class SyntheticTickSource:
    """Seeded synthetic market feed over a fixed instrument set.

    Per time step ``dt`` every instrument's spot follows a GBM step
    with jump mixture; every ``vol_every`` steps its volatility takes
    a mean-reverting step, and every ``rate_every`` steps its rate a
    small random walk.  All draws come from one
    ``numpy.random.default_rng(seed)`` consumed in a fixed order, and
    :meth:`__iter__` rebuilds that RNG each time — the source is
    deterministic and re-iterable.

    :param initial: ``{instrument_id: (spot, volatility, rate)}`` —
        the level each path starts from (typically the position book's
        own starting inputs).
    :param seed: RNG seed; same seed, same stream.
    :param n_steps: number of time steps to emit.
    :param dt: step width in stream seconds (also the tick ``ts``
        spacing).
    :param drift: annualised GBM drift of the spot paths.
    :param jump_prob: per-step probability of a spot jump.
    :param jump_scale: standard deviation of the jump's log factor.
    :param vol_every: emit a volatility tick every this many steps.
    :param rate_every: emit a rate tick every this many steps.
    :param vol_of_vol: scale of the volatility mean-reversion noise.
    :param rate_step: scale of the rate random-walk step.
    """

    def __init__(self, initial, *, seed: int, n_steps: int,
                 dt: float = 0.001, drift: float = 0.0,
                 jump_prob: float = 0.02, jump_scale: float = 0.05,
                 vol_every: int = 7, rate_every: int = 13,
                 vol_of_vol: float = 0.05, rate_step: float = 1e-4):
        if not initial:
            raise StreamError("SyntheticTickSource needs at least one "
                              "instrument in `initial`")
        if n_steps < 0:
            raise StreamError(f"n_steps must be >= 0, got {n_steps}")
        if not dt > 0.0:
            raise StreamError(f"dt must be > 0, got {dt}")
        if vol_every < 1 or rate_every < 1:
            raise StreamError("vol_every and rate_every must be >= 1")
        self.instruments = tuple(initial)
        self._initial = {name: (float(spot), float(vol), float(rate))
                         for name, (spot, vol, rate) in initial.items()}
        self.seed = int(seed)
        self.n_steps = int(n_steps)
        self.dt = float(dt)
        self.drift = float(drift)
        self.jump_prob = float(jump_prob)
        self.jump_scale = float(jump_scale)
        self.vol_every = int(vol_every)
        self.rate_every = int(rate_every)
        self.vol_of_vol = float(vol_of_vol)
        self.rate_step = float(rate_step)

    def __len__(self) -> int:
        per_step = len(self.instruments)
        vol_ticks = len(self.instruments) * (self.n_steps // self.vol_every)
        rate_ticks = len(self.instruments) * (self.n_steps // self.rate_every)
        return per_step * self.n_steps + vol_ticks + rate_ticks

    def __iter__(self):
        rng = np.random.default_rng(self.seed)
        spot = {k: v[0] for k, v in self._initial.items()}
        vol = {k: v[1] for k, v in self._initial.items()}
        rate = {k: v[2] for k, v in self._initial.items()}
        anchor_vol = dict(vol)
        sqrt_dt = math.sqrt(self.dt)
        for step in range(1, self.n_steps + 1):
            ts = step * self.dt
            emit_vol = step % self.vol_every == 0
            emit_rate = step % self.rate_every == 0
            for name in self.instruments:
                sigma = vol[name]
                shock = float(rng.standard_normal())
                log_step = ((self.drift - 0.5 * sigma * sigma) * self.dt
                            + sigma * sqrt_dt * shock)
                if float(rng.random()) < self.jump_prob:
                    log_step += self.jump_scale * float(
                        rng.standard_normal())
                spot[name] = spot[name] * math.exp(log_step)
                yield Tick(name, "spot", spot[name], ts)
                if emit_vol:
                    pull = 0.5 * (anchor_vol[name] - sigma) * self.dt
                    noise = (self.vol_of_vol * sqrt_dt
                             * float(rng.standard_normal()))
                    vol[name] = min(max(sigma + pull + noise, 1e-3), 4.0)
                    yield Tick(name, "volatility", vol[name], ts)
                if emit_rate:
                    walk = self.rate_step * float(rng.standard_normal())
                    rate[name] = min(max(rate[name] + walk, -0.05), 0.5)
                    yield Tick(name, "rate", rate[name], ts)
