"""E3 — Figure 1: the binomial tree and Equation (1) semantics.

Figure 1 is the paper's worked 2-step tree: leaves initialised from
the payoff, backward iteration via ``S[t,k] = d*S[t+1,k]`` and
``V[t,k] = max(sign*(S-K), rp*V[t+1,k] + rq*V[t+1,k+1])``.  The bench
verifies the recurrence cell by cell on that 2-step tree and measures
the reference pricer at the paper's full N=1024 (the "tree nodes/s" a
plain Python/numpy implementation achieves, for scale).
"""

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.finance import (
    Option,
    OptionType,
    asset_prices_at_step,
    build_lattice_params,
    price_binomial,
    price_binomial_scalar,
)


@pytest.fixture(scope="module")
def option():
    return Option(spot=100.0, strike=100.0, rate=0.05, volatility=0.3,
                  maturity=0.5, option_type=OptionType.PUT)


def test_two_step_tree_by_hand(option, save_result):
    """Every node of Figure 1's T=2 tree, computed by hand."""
    params = build_lattice_params(option, 2)
    u, d = params.up, params.down
    rp, rq = params.discounted_p_up, params.discounted_p_down
    s0, k_strike = option.spot, option.strike

    # Figure 1's asset grid: S[2,0]=u^2*S0, S[2,1]=S0, S[2,2]=u^-2*S0
    leaves = asset_prices_at_step(option, params, 2)
    assert leaves[0] == pytest.approx(u * u * s0)
    assert leaves[1] == pytest.approx(s0)
    assert leaves[2] == pytest.approx(d * d * s0)

    v2 = np.maximum(k_strike - leaves, 0.0)           # put payoff at expiry
    s1 = d * leaves[:2]                               # S[1,k] = d*S[2,k]
    v1 = np.maximum(np.maximum(k_strike - s1, 0.0),
                    rp * v2[:2] + rq * v2[1:])        # Equation (1)
    s0_row = d * s1[:1]
    v0 = max(max(k_strike - s0_row[0], 0.0), rp * v1[0] + rq * v1[1])

    assert price_binomial(option, 2).price == pytest.approx(v0, rel=1e-14)
    assert price_binomial_scalar(option, 2).price == pytest.approx(v0, rel=1e-14)

    rows = [
        ("(2,k) leaves S", np.array2string(leaves, precision=4), "payoff init"),
        ("(2,k) leaves V", np.array2string(v2, precision=4), "max(K-S, 0)"),
        ("(1,k) V", np.array2string(v1, precision=4), "Equation (1)"),
        ("(0,0) V", f"{v0:.6f}", "option price"),
    ]
    save_result("fig1_tree_semantics",
                render_table(("node", "value", "rule"), rows,
                             title="Figure 1 worked example (E3)"))


def test_reference_pricer_throughput_at_n1024(benchmark, option):
    """Measure the Python reference at the paper's tree size."""
    result = benchmark(price_binomial, option, 1024)
    assert result.price > 0
    # one tree = 524800 interior nodes + 1025 leaves
    assert result.tree_nodes == 525_825


def test_equation1_invariant_any_level(option):
    """Spot-check Equation (1) against the pricer at a deeper level."""
    steps = 16
    params = build_lattice_params(option, steps)
    row5 = asset_prices_at_step(option, params, 5)
    row6 = asset_prices_at_step(option, params, 6)
    assert np.allclose(row5, params.down * row6[:6], rtol=1e-13)
