"""E11 — the paper's announced future work: OpenCL portability study.

"Future work will focus on other hardware architectures supporting the
OpenCL standard [16], [17], so as to compare their performances to the
FPGA device and study the portability of the OpenCL kernel."

[16] is TI's KeyStone DSP stack, [17] ARM's Mali OpenCL SDK.  The bench
projects kernel IV.B onto both (datasheet peak rates, efficiency
factors borrowed from the measured GTX660 calibration) and — since no
published ground truth exists for these targets — asserts only
ordering-level conclusions.
"""

import pytest

from repro.bench.experiments import portability_study
from repro.core import HostProgramB, simulate_kernel_b_batch
from repro.devices import MALI_T604, TI_C6678, embedded_device
from repro.finance import generate_batch

import numpy as np


@pytest.fixture(scope="module")
def study():
    return portability_study()


def test_portability_study(benchmark, study, save_result):
    result = benchmark(portability_study)
    save_result("portability_future_work", study.rendered)
    assert len(result.rows) == 5


def test_kernel_is_functionally_portable(save_result):
    """The OpenCL kernel runs unmodified on every simulated target and
    produces identical prices — the portability claim, demonstrated."""
    batch = list(generate_batch(n_options=4, seed=21).options)
    steps = 12
    reference = simulate_kernel_b_batch(batch, steps)
    for device in (embedded_device(TI_C6678), embedded_device(MALI_T604)):
        run = HostProgramB(device, steps).price(batch)
        assert np.array_equal(run.prices, reference), device.name


def test_fpga_still_best_among_targets_meeting_the_use_case(study):
    """The projection's headline: only the FPGA and the discrete GPU
    reach 2000 options/s in double precision, and of those the FPGA
    stays the most energy-efficient — the paper's thesis survives its
    own future work."""
    meeting = [r for r in study.rows if r.meets_use_case]
    assert {r.target.split(" (")[0] for r in meeting} == {
        "Terasic DE4", "NVIDIA GTX660 Ti"}
    best = max(meeting, key=lambda r: r.options_per_joule)
    assert "DE4" in best.target


def test_embedded_targets_fit_the_10w_budget_but_miss_throughput(study):
    """Why the authors flagged these parts: both fit the trader's power
    budget (Section I's 10 W), but neither sustains 2000 options/s in
    double precision at N=1024."""
    dsp = study.row("C6678")
    mali = study.row("Mali")
    assert dsp.power_w <= 10.0 and mali.power_w <= 10.0
    assert not dsp.meets_use_case and not mali.meets_use_case
    # both still land within ~2x of the target: plausible candidates
    assert dsp.options_per_second > 1000
    assert mali.options_per_second > 500


def test_mali_projects_best_raw_energy_efficiency(study):
    """An embedded GPU at 2.5 W dominates options/J outright — the
    trade-off axis the paper's metric makes visible."""
    mali = study.row("Mali")
    assert mali.options_per_joule == max(r.options_per_joule
                                         for r in study.rows)


def test_projected_rows_are_labelled(study):
    assert all(r.projected == ("projected" in r.target) for r in study.rows)
