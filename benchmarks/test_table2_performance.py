"""E2 — Table II: options/s, RMSE, options/J, tree-nodes/s.

Regenerates all nine columns: the seven measured configurations
(kernels IV.A/IV.B on FPGA/GPU, the software reference in single and
double) plus the two literature rows carried as printed.  Throughput
and energy come from the calibrated analytic models; RMSE from pricing
a 200-option batch at the paper's full N=1024 with each
configuration's exact arithmetic (flawed pow included).
"""

import pytest

from repro.bench import published, table2
from repro.bench.experiments import Table2Result

#: |measured/paper - 1| tolerance for rate-like Table II cells.
RATE_TOLERANCE = 0.05


@pytest.fixture(scope="module")
def result() -> Table2Result:
    return table2(accuracy_options=200)


def test_table2_regeneration(benchmark, result, save_result):
    out = benchmark.pedantic(
        lambda: table2(accuracy_options=20), rounds=1, iterations=1
    )
    assert len(out.rows) == 9
    save_result("table2_performance", result.rendered)


@pytest.mark.parametrize("index", range(7))
def test_measured_columns_match_paper(result, index):
    row = result.rows[index]
    paper = published.TABLE2[index]
    # Column 1 (kernel IV.A on the GPU) is printed as 53 options/s in
    # Table II but quoted as 58.4 options/s in Section V.C; we pin the
    # calibration to the V.C figure, so this column sits 10% above the
    # printed cell (recorded in EXPERIMENTS.md).
    rate_tol = 0.12 if index == 1 else RATE_TOLERANCE
    assert row.options_per_second == pytest.approx(
        paper.options_per_second, rel=rate_tol), row.label
    assert row.options_per_joule == pytest.approx(
        paper.options_per_joule, rel=0.12), row.label
    assert row.tree_nodes_per_second == pytest.approx(
        paper.tree_nodes_per_second, rel=0.12), row.label


def test_rmse_story(result):
    """RMSE column: flawed-pow FPGA and fp32 rows ~1e-3; exact rows 0.

    Known deviations from the printed table (see EXPERIMENTS.md):
    IV.A-FPGA prints ~1e-3 in the paper but its own Section V.C argues
    kernel IV.A avoids the pow operator — we reproduce the text; and
    the GPU-single column prints 0 although fp32 rounding alone is
    ~1e-3 (the paper's single-precision *reference* row shows exactly
    that).
    """
    by_label = {
        (r.label, r.platform, r.precision): r.rmse_display for r in result.rows
    }
    assert by_label[("Kernel IV.B", "FPGA (DE4)", "double")] == "~1e-3"
    assert by_label[("Kernel IV.B", "GPU (GTX660 Ti)", "double")] == "0"
    assert by_label[("Kernel IV.A", "GPU (GTX660 Ti)", "double")] == "0"
    assert by_label[("Reference sw", "Xeon X5450 (1 core)", "double")] == "0"
    assert by_label[("Reference sw", "Xeon X5450 (1 core)", "single")] in (
        "~1e-3", "~1e-2")


def test_energy_rankings(result):
    """Who wins on options/J, and by roughly what factor."""
    rows = {(r.label, r.platform, r.precision): r for r in result.rows}
    fpga_b = rows[("Kernel IV.B", "FPGA (DE4)", "double")]
    gpu_b = rows[("Kernel IV.B", "GPU (GTX660 Ti)", "double")]
    ref = rows[("Reference sw", "Xeon X5450 (1 core)", "double")]
    assert fpga_b.options_per_joule / gpu_b.options_per_joule == pytest.approx(
        140 / 64, rel=0.15)
    assert fpga_b.options_per_joule / ref.options_per_joule > 5.0


def test_literature_rows_carried_verbatim(result):
    jin = result.rows[7]
    wynnyk = result.rows[8]
    assert jin.options_per_second == 385
    assert jin.options_per_joule is None
    assert wynnyk.options_per_second == 1152
    assert wynnyk.tree_nodes_per_second == 576e6
