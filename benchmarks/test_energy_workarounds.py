"""E9 — Section V.C / conclusion: fitting the 10 W power budget.

"The power that is used to achieve this computation time, 7W more than
available, can be lowered to acceptable levels with a more appropriate
target and by reducing the kernel frequency.  ...  either clock
frequency or parallelism levels can be lowered to reduce energy
consumption."

The bench under-clocks the fitted kernel IV.B, finds the highest clock
inside the 10 W budget, and sweeps the parallelism design space for
lower-power fitting points.
"""

import pytest

from repro.bench import published
from repro.bench.experiments import energy_workarounds
from repro.core import explore_design_space, kernel_b_ir
from repro.devices.calibration import FPGA_PIPELINE_DERATE


@pytest.fixture(scope="module")
def workarounds():
    return energy_workarounds()


def test_energy_workarounds(benchmark, workarounds, save_result):
    result = benchmark(energy_workarounds)
    save_result("energy_workarounds", workarounds.rendered)
    assert result.budget_point.power_w <= 10.01


def test_full_speed_point_overshoots_by_about_7w(workarounds):
    full = workarounds.points[0]
    overshoot = full.power_w - published.PAPER_POWER_BUDGET_W
    assert overshoot == pytest.approx(7.0, abs=1.0)  # "7W more than available"


def test_budget_point_trades_throughput(workarounds):
    """Inside 10 W the kernel drops below the 2000 options/s target —
    quantifying why the paper calls for 'a more appropriate target'."""
    budget = workarounds.budget_point
    assert budget.power_w == pytest.approx(10.0, abs=0.05)
    assert budget.options_per_second < published.PAPER_USE_CASE_OPTIONS_PER_S
    assert budget.options_per_second > 1000  # but within 2x of it


def test_underclocking_helps_energy_per_option_only_mildly(workarounds):
    """Static power makes options/J *fall* as the clock drops — under-
    clocking meets a power cap but is not an efficiency win."""
    effs = [p.options_per_joule for p in workarounds.points]
    assert effs[0] == max(effs)


def test_lower_parallelism_points_fit_the_budget():
    """The paper's other knob: lower V/U compiles are cooler."""
    points = explore_design_space(
        kernel_b_ir(1024), simd_widths=(1, 2, 4), compute_units=(1,),
        unrolls=(1, 2), pipeline_derate=FPGA_PIPELINE_DERATE,
    )
    fitting = [p for p in points if p.fits]
    cool = [p for p in fitting
            if p.compiled.power_w <= published.PAPER_POWER_BUDGET_W]
    assert cool, "some lower-parallelism point must fit 10 W"
    # and the fastest cool point still prices hundreds of options/s
    assert max(p.options_per_second for p in cool) > 300
