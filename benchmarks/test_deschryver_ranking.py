"""E13 — rank the paper's solutions with its related work's benchmark.

Section II describes de Schryver et al.'s accelerator benchmark
(problem / model / solution, J/option as the discriminating
criterion).  This experiment applies that methodology to the paper's
own configurations, under the paper's own constraints, and reproduces
the conclusion's conditional verdict: *"Provided that the 13.0 SP1 of
Altera's OpenCL compiler generates an accurate Power operator, the
kernel IV.B on the DE4 board answers most of the constraints of our
problem"* — with the flawed operator the FPGA is eliminated on
accuracy, with a fixed one it wins outright.
"""

import pytest

from repro.bench.methodology import (
    CRR_BINOMIAL_MODEL,
    AcceleratorBenchmark,
    PricingProblem,
    Solution,
)
from repro.core import (
    EXACT_DOUBLE,
    BinomialAccelerator,
    simulate_kernel_b_batch,
)
from repro.finance import generate_batch

STEPS = 1024
WORKLOAD = 40  # accuracy-batch size (throughput comes from the models)


@pytest.fixture(scope="module")
def problem():
    batch = generate_batch(n_options=WORKLOAD, seed=13).options
    return PricingProblem(
        name="trader volatility curve",
        options=batch,
        steps=STEPS,
        max_rmse=1e-4,              # the paper calls 1e-3 insufficient
        max_power_w=150.0,          # lab wall power (not the 10 W budget)
        min_options_per_second=2000.0,
    )


@pytest.fixture(scope="module")
def solutions():
    configs = (
        ("IV.B FPGA double", "fpga", "iv_b", "double"),
        ("IV.B GPU double", "gpu", "iv_b", "double"),
        ("IV.B GPU single", "gpu", "iv_b", "single"),
        ("Reference sw double", "cpu", "reference", "double"),
    )
    out = []
    for name, platform, kernel, precision in configs:
        acc = BinomialAccelerator(platform=platform, kernel=kernel,
                                  precision=precision, steps=STEPS)
        out.append(Solution.from_accelerator(acc, name=name))
    return out


@pytest.fixture(scope="module")
def ranking(problem, solutions):
    return AcceleratorBenchmark(problem, CRR_BINOMIAL_MODEL).rank(solutions)


def test_deschryver_ranking(benchmark, problem, solutions, save_result):
    bench_obj = AcceleratorBenchmark(problem, CRR_BINOMIAL_MODEL)
    evaluations = benchmark.pedantic(lambda: bench_obj.rank(solutions),
                                     rounds=1, iterations=1)
    save_result("deschryver_ranking", bench_obj.report(evaluations))
    assert len(evaluations) == 4


def test_flawed_fpga_eliminated_on_accuracy(ranking):
    """With the 13.0 pow defect, the FPGA fails the accuracy gate —
    the exact problem the paper's conclusion is hedging about."""
    fpga = next(e for e in ranking if "FPGA" in e.solution.name)
    assert not fpga.meets_accuracy
    assert fpga.meets_power and fpga.meets_throughput
    assert not fpga.feasible


def test_gpu_double_wins_among_feasible(ranking):
    """Among solutions that meet all constraints, J/option picks the
    GPU in double precision (the single-precision GPU fails accuracy,
    the CPU fails throughput)."""
    feasible = [e for e in ranking if e.feasible]
    assert feasible, "at least one feasible solution expected"
    assert feasible[0].solution.name == "IV.B GPU double"


def test_fixed_pow_fpga_wins_outright(problem, solutions, save_result):
    """The paper's conditional: with an accurate Power operator the
    FPGA answers the constraints — and tops the J/option ranking."""
    fixed_fpga = Solution(
        name="IV.B FPGA double (13.0 SP1, fixed pow)",
        price_fn=lambda options, steps: simulate_kernel_b_batch(
            options, steps, EXACT_DOUBLE),
        options_per_second=solutions[0].options_per_second,
        power_w=solutions[0].power_w,
    )
    bench_obj = AcceleratorBenchmark(problem, CRR_BINOMIAL_MODEL)
    evaluations = bench_obj.rank(list(solutions) + [fixed_fpga])
    save_result("deschryver_ranking_fixed_pow", bench_obj.report(evaluations))
    assert evaluations[0].solution.name.startswith("IV.B FPGA double (13.0 SP1")
    assert evaluations[0].feasible


def test_joules_per_option_is_the_sort_key(ranking):
    feasible = [e for e in ranking if e.feasible]
    values = [e.joules_per_option for e in feasible]
    assert values == sorted(values)


def test_cpu_fails_throughput_only(ranking):
    cpu = next(e for e in ranking if "Reference" in e.solution.name)
    assert cpu.meets_accuracy and cpu.meets_power
    assert not cpu.meets_throughput
