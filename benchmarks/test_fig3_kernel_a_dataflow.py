"""E4 — Figure 3: kernel IV.A's batch dataflow, observed functionally.

Runs the actual host program (ping-pong buffers, per-batch writes,
full-tree NDRange, per-batch readback) on the simulated DE4 at a
reduced tree size and verifies every structural claim of Section IV.A
and Figure 3: the ``N(N+1)/2`` work-item count, the option-per-batch
pipelining, the four host operations per batch, and the full-buffer
readback whose ~12.6 MB/batch (at N=1024; the paper says ~19 MB for
its slightly larger record) stalls the kernel.
"""

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.core import (
    HostProgramA,
    ReadbackMode,
    interior_nodes,
    pipeline_buffer_bytes,
)
from repro.devices import fpga_device
from repro.finance import generate_batch, price_binomial
from repro.opencl import CommandType

STEPS = 16
N_OPTIONS = 8


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=N_OPTIONS, seed=4).options)


def test_kernel_a_functional_dataflow(benchmark, batch, save_result):
    host = HostProgramA(fpga_device("iv_a"), STEPS)
    run = benchmark.pedantic(lambda: host.price(batch), rounds=1, iterations=1)

    reference = [price_binomial(o, STEPS).price for o in batch]
    assert np.allclose(run.prices, reference, rtol=1e-12)

    # one option exits per batch once the pipeline is full
    assert run.batches == N_OPTIONS + STEPS - 1
    # every batch launches the full tree network of work-items
    launches = [e for e in host.queue.events
                if e.command_type is CommandType.NDRANGE_KERNEL]
    assert all(e.info["global_size"] == interior_nodes(STEPS)
               for e in launches)
    # the throughput killer: a full ping-pong buffer read per batch
    per_batch_read = run.bytes_read / run.batches
    assert per_batch_read == pytest.approx(pipeline_buffer_bytes(STEPS))

    full_size = pipeline_buffer_bytes(1024)
    rows = [
        ("work-items/batch (N(N+1)/2)", interior_nodes(STEPS),
         f"{interior_nodes(1024):,} at N=1024"),
        ("batches for 8 options", run.batches, "Nop + N - 1 (pipelining)"),
        ("readback/batch", f"{per_batch_read:,.0f} B",
         f"{full_size / 1e6:.1f} MB at N=1024 (paper: ~19 MB)"),
        ("kernel launches", run.kernel_launches, "one per batch"),
        ("simulated throughput", f"{run.options_per_second:,.1f} opt/s",
         "25 opt/s at N=1024 (Table II)"),
    ]
    save_result("fig3_kernel_a_dataflow",
                render_table(("structure", "observed", "paper / full size"),
                             rows, title="Kernel IV.A dataflow (E4)"))


def test_transfer_dominates_compute_on_the_link_model(batch):
    """The simulated clock shows the Figure 3 flow is readback-bound."""
    host = HostProgramA(fpga_device("iv_a"), STEPS)
    host.price(batch)
    transfer_ns = host.queue.transfer_time_ns()
    kernel_ns = host.queue.kernel_time_ns()
    assert transfer_ns > kernel_ns


def test_result_only_variant_removes_the_stall(batch):
    full = HostProgramA(fpga_device("iv_a"), STEPS).price(batch)
    modified = HostProgramA(fpga_device("iv_a"), STEPS,
                            readback=ReadbackMode.RESULT_ONLY).price(batch)
    assert np.array_equal(full.prices, modified.prices)
    assert modified.bytes_read < full.bytes_read / 100
    assert modified.simulated_time_s < full.simulated_time_s
