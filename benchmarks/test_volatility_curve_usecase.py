"""E10 — Section I: the trader's volatility-curve use case.

"This work aims at providing an architecture that can price 2000
option values under a second while being powered by the user's
workstation. ... a trader can use our work to estimate the implied
volatility curve of an option."

The bench drives the full loop — market quotes, the FPGA accelerator
as the pricing engine (flawed pow included), implied-vol solves per
strike — and takes the 2000-option-per-second verdict from the
calibrated model at the paper's full N=1024.
"""

import pytest

from repro.bench import published, volatility_curve_usecase
from repro.core import BinomialAccelerator


@pytest.fixture(scope="module")
def usecase():
    return volatility_curve_usecase(n_strikes=11, steps=256)


def test_volatility_curve_usecase(benchmark, usecase, save_result):
    result = benchmark.pedantic(
        lambda: volatility_curve_usecase(n_strikes=3, steps=64),
        rounds=1, iterations=1,
    )
    save_result("volatility_curve_usecase", usecase.rendered)
    assert result.max_vol_error < 0.02


def test_smile_recovered_through_the_accelerator(usecase):
    """Implied vols recovered to a few 1e-3 despite the flawed pow —
    the level of error the paper flags as (barely) unacceptable."""
    assert usecase.max_vol_error < 5e-3


def test_2000_options_under_a_second(usecase):
    assert usecase.meets_throughput
    assert usecase.modeled_time_s < 1.0
    implied_rate = published.PAPER_USE_CASE_OPTIONS_PER_S / usecase.modeled_time_s
    assert implied_rate > published.PAPER_USE_CASE_OPTIONS_PER_S


def test_power_within_the_abstracts_20w(usecase):
    """Abstract: 'an average power of less than 20W' (the 10 W design
    budget itself is missed — experiment E9)."""
    assert usecase.modeled_power_w < 20.0
    assert usecase.modeled_power_w > published.PAPER_POWER_BUDGET_W


def test_solver_evaluation_budget(usecase):
    """One curve costs tens of engine calls per strike; 2000 option
    evaluations per curve (the paper's sizing) is the right order for
    a full 100+-strike production curve."""
    per_strike = usecase.total_engine_evaluations / 11
    assert 3 < per_strike < 60


def test_gpu_would_need_more_power(usecase):
    gpu = BinomialAccelerator(platform="gpu", kernel="iv_b", steps=1024)
    assert gpu.performance().power_w > 5 * usecase.modeled_power_w
