"""E14 — the N=1024 compromise: speed vs precision vs memory.

Section V.B: "choosing a discretization step of T = 1024 ... provides
a good compromise between speed, precision and hardware restrictions
(in terms of memory resources)."

The bench sweeps the lattice depth and evaluates all three axes:
discretisation error (from the convergence study), modeled kernel IV.B
throughput, and whether the design still fits the Stratix IV's M9K
budget (the work-group's local value row grows with N).
"""

import pytest

from repro.bench.tables import render_table
from repro.core import kernel_b_estimate, kernel_b_ir
from repro.devices import fpga_compute_model
from repro.errors import FitError
from repro.finance import Option, OptionType
from repro.finance.convergence import (
    convergence_study,
    estimate_convergence_order,
    richardson_extrapolation,
)
from repro.hls import KERNEL_B_OPTIONS, compile_kernel

STEPS_SWEEP = (64, 128, 256, 512, 1024, 2048, 4096)


@pytest.fixture(scope="module")
def option():
    return Option(spot=100.0, strike=100.0, rate=0.05, volatility=0.30,
                  maturity=1.0, option_type=OptionType.PUT)


@pytest.fixture(scope="module")
def study(option):
    return convergence_study(option, steps_list=STEPS_SWEEP,
                             reference_steps=16384)


@pytest.fixture(scope="module")
def tradeoff(study):
    rows = []
    for point in study:
        estimate = kernel_b_estimate(fpga_compute_model("iv_b"), point.steps)
        try:
            compile_kernel(kernel_b_ir(point.steps), KERNEL_B_OPTIONS)
            fits = True
        except FitError:
            fits = False
        rows.append((point, estimate, fits))
    return rows


def test_steps_tradeoff(benchmark, option, tradeoff, save_result):
    result = benchmark.pedantic(
        lambda: convergence_study(option, steps_list=(64, 256),
                                  reference_steps=4096),
        rounds=1, iterations=1,
    )
    assert len(result) == 2
    table_rows = [
        (p.steps, f"{p.price:.6f}", f"{p.abs_error:.2e}",
         f"{est.options_per_second:,.0f}",
         "yes" if est.options_per_second >= 2000 else "no",
         "yes" if fits else "NO (M9K budget)")
        for p, est, fits in tradeoff
    ]
    save_result("steps_tradeoff",
                render_table(("N", "price", "|error|", "options/s",
                              ">=2000 opt/s", "fits EP4SGX530"),
                             table_rows,
                             title="The N=1024 compromise (E14)"))


def test_error_shrinks_with_depth(study):
    errors = [p.abs_error for p in study]
    assert errors[-1] < errors[0] / 10


def test_first_order_convergence(study):
    order = estimate_convergence_order(study)
    assert -1.6 < order < -0.5  # ~O(1/N) with oscillation noise


def test_n1024_is_the_sweet_spot(tradeoff):
    """At N=1024 all three constraints hold; the neighbours each break
    one — precision at 512 is 2x worse, 2048 halves throughput below
    the use-case target."""
    by_steps = {p.steps: (p, est, fits) for p, est, fits in tradeoff}
    p1024, est1024, fits1024 = by_steps[1024]
    assert fits1024
    assert est1024.options_per_second >= 2000
    assert p1024.abs_error < 5e-3

    _, est2048, _ = by_steps[2048]
    assert est2048.options_per_second < 2000  # speed leg fails

    p512, _, _ = by_steps[512]
    assert p512.abs_error > p1024.abs_error  # precision leg degrades


def test_memory_restriction_binds_at_large_n(tradeoff):
    """'hardware restrictions (in terms of memory resources)': the
    per-work-group value row eventually blows the M9K budget."""
    fits_by_steps = {p.steps: fits for p, _, fits in tradeoff}
    assert fits_by_steps[1024]
    assert not fits_by_steps[4096]


def test_richardson_buys_depth_on_average(option):
    """Averaged over depths, smoothed extrapolation from N beats the
    plain 2N lattice — accuracy without the deeper tree's memory."""
    import numpy as np

    from repro.finance import price_binomial

    reference = price_binomial(option, 16384).price
    depths = (128, 256, 512)
    plain_2n = [abs(price_binomial(option, 2 * n).price - reference)
                for n in depths]
    extrapolated = [abs(richardson_extrapolation(option, n) - reference)
                    for n in depths]
    gm = lambda xs: float(np.exp(np.mean(np.log(np.maximum(xs, 1e-16)))))
    assert gm(extrapolated) < gm(plain_2n)
