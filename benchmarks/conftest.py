"""Shared helpers for the benchmark harness.

Every bench regenerates one table/figure/in-text result of the paper
(see DESIGN.md's experiment index) and writes its paper-vs-reproduced
table to ``benchmarks/results/<experiment>.txt`` so the artifacts
survive the pytest-benchmark run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a rendered experiment table to the results directory."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _save
