"""E6 — Section V.C: device saturation behaviour.

"All the presented results were sampled after device saturation ...
This saturation typically happens at 1e5 priced options ... Only the
kernel IV.B implemented on the GTX660 has a saturation at a higher
number of options (1e6 options in both double and single precision)."

The bench sweeps the workload size over five decades and checks that
the effective-throughput knees sit where the paper puts them.
"""

import pytest

from repro.bench import saturation_sweep
from repro.core import kernel_b_estimate, reference_estimate
from repro.devices import cpu_compute_model, fpga_compute_model, gpu_compute_model


@pytest.fixture(scope="module")
def sweep():
    return saturation_sweep()


def test_saturation_sweep(benchmark, sweep, save_result):
    result = benchmark(saturation_sweep)
    save_result("saturation_sweep", sweep.rendered)
    assert set(result.series) == {
        "IV.B FPGA", "IV.B GPU double", "IV.B GPU single", "Reference sw",
    }


def test_fpga_saturates_at_1e5(sweep):
    series = sweep.series["IV.B FPGA"]
    workloads = sweep.workloads
    peak = kernel_b_estimate(fpga_compute_model("iv_b")).options_per_second
    at_1e5 = series[workloads.index(100_000)]
    at_1e4 = series[workloads.index(10_000)]
    assert at_1e5 >= 0.95 * peak
    assert at_1e4 < 0.95 * peak


def test_gpu_kernel_b_saturates_at_1e6_both_precisions(sweep):
    workloads = sweep.workloads
    for name, model in (("IV.B GPU double", gpu_compute_model("iv_b")),
                        ("IV.B GPU single",
                         gpu_compute_model("iv_b", "single"))):
        series = sweep.series[name]
        peak = kernel_b_estimate(model).options_per_second
        assert series[workloads.index(1_000_000)] >= 0.95 * peak
        assert series[workloads.index(100_000)] < 0.95 * peak


def test_gpu_needs_ten_times_the_workload(sweep):
    """'the GPU board needs a more important workload to reach optimal
    performances (ten times as many)'."""
    fpga_sat = fpga_compute_model("iv_b").saturation_options
    gpu_sat = gpu_compute_model("iv_b").saturation_options
    assert gpu_sat == pytest.approx(10 * fpga_sat)


def test_throughput_linear_after_saturation(sweep):
    """Post-saturation, time is linear in the option count."""
    est = kernel_b_estimate(fpga_compute_model("iv_b"))
    t1 = est.time_for(2_000_000)
    t2 = est.time_for(4_000_000)
    assert t2 / t1 == pytest.approx(2.0, rel=0.01)


def test_sequential_reference_has_no_ramp(sweep):
    series = sweep.series["Reference sw"]
    ref = reference_estimate(cpu_compute_model()).options_per_second
    assert all(rate == pytest.approx(ref, rel=0.01) for rate in series[1:])


def test_low_workload_latency_favors_fpga_over_gpu(sweep):
    """Section V.C: 'latency at low workload is an issue' for a single
    trader — at 100-1000 options the FPGA beats the GPU (double)."""
    workloads = sweep.workloads
    fpga = sweep.series["IV.B FPGA"]
    gpu = sweep.series["IV.B GPU double"]
    assert fpga[workloads.index(100)] > gpu[workloads.index(100)]
    assert fpga[workloads.index(1_000)] > gpu[workloads.index(1_000)]
    # while post-saturation the GPU's raw throughput wins
    assert gpu[-1] > fpga[-1]
