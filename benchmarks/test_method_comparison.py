"""E16 — Section II's method landscape: lattice vs Monte Carlo vs QUAD.

The related work positions the binomial choice against its rivals:

* Monte Carlo accelerators ([4]-[8]) offer massive parallelism, "but
  the acceleration factors that can be achieved are counterbalanced by
  the slow convergence rate of this method";
* Jin, Luk & Thomas [12] "conclude that quadrature methods are the
  best compromise to price American options, while tree-based methods
  are optimal when time-to-solution is a key constraint".

The bench prices one American put with all three methods at increasing
work budgets (work counted in each method's natural unit: node updates,
path-steps, kernel evaluations) and checks the qualitative landscape
the paper builds its method choice on.
"""

import math

import pytest

from repro.bench.tables import render_table
from repro.finance import (
    Option,
    OptionType,
    price_american_lsmc,
    price_binomial,
    price_quadrature,
)

TARGET_ACCURACY = 1e-3  # the accuracy bar the paper's use case implies


@pytest.fixture(scope="module")
def option():
    return Option(spot=100.0, strike=100.0, rate=0.05, volatility=0.30,
                  maturity=1.0, option_type=OptionType.PUT)


@pytest.fixture(scope="module")
def reference(option):
    return price_binomial(option, 16384).price


@pytest.fixture(scope="module")
def landscape(option, reference):
    """(method, work, error) points across three work decades each."""
    points = []
    for steps in (64, 256, 1024):
        work = steps * (steps + 1) // 2
        error = abs(price_binomial(option, steps).price - reference)
        points.append(("binomial", work, error))
    for paths in (4_000, 40_000, 400_000):
        work = paths * 50  # path-steps
        error = abs(
            price_american_lsmc(option, paths=paths, steps=50, seed=42).price
            - reference)
        points.append(("monte-carlo", work, error))
    for dates, grid in ((16, 257), (64, 513), (256, 1025)):
        work = dates * grid * grid  # kernel evaluations
        error = abs(price_quadrature(option, dates, grid) - reference)
        points.append(("quadrature", work, error))
    return points


def test_method_comparison(benchmark, landscape, reference, save_result,
                           option):
    value = benchmark.pedantic(
        lambda: price_binomial(option, 1024).price, rounds=3, iterations=1)
    assert abs(value - reference) < 5e-3
    rows = [(m, f"{w:,}", f"{e:.2e}") for m, w, e in landscape]
    save_result("method_comparison",
                render_table(("method", "work units", "|error|"), rows,
                             title="Pricing-method landscape (E16)"))


def test_every_method_converges(landscape):
    for method in ("binomial", "monte-carlo", "quadrature"):
        errors = [e for m, _, e in landscape if m == method]
        assert min(errors) < errors[0], method


def test_monte_carlo_converges_slowest(landscape, option):
    """'the slow convergence rate of this method': the sampling error
    falls only as paths^-1/2, and LSMC's exercise-policy bias puts a
    floor under the total error — at every tested budget MC is the
    least accurate method and never reaches the accuracy bar."""
    mc_errors = [e for m, _, e in landscape if m == "monte-carlo"]
    assert min(mc_errors) > min(e for m, _, e in landscape
                                if m == "binomial")
    assert all(e > TARGET_ACCURACY for e in mc_errors)
    # the sampling component provably scales as 1/sqrt(paths)
    small = price_american_lsmc(option, paths=10_000, steps=50, seed=1)
    large = price_american_lsmc(option, paths=160_000, steps=50, seed=1)
    assert large.std_error == pytest.approx(small.std_error / 4, rel=0.35)


def test_tree_wins_time_to_solution(landscape):
    """[12]: 'tree-based methods are optimal when time-to-solution is a
    key constraint' — the lattice reaches the accuracy bar with the
    least work of the three."""
    def work_to_reach(method):
        qualifying = [w for m, w, e in landscape
                      if m == method and e <= 2 * TARGET_ACCURACY]
        return min(qualifying) if qualifying else float("inf")

    tree_work = work_to_reach("binomial")
    assert tree_work < work_to_reach("monte-carlo")
    assert tree_work < work_to_reach("quadrature")


def test_quadrature_beats_monte_carlo_on_accuracy(landscape):
    """The deterministic methods reach accuracies MC cannot touch at
    these budgets ([12]'s case for quadrature over simulation)."""
    best_quad = min(e for m, _, e in landscape if m == "quadrature")
    best_mc = min(e for m, _, e in landscape if m == "monte-carlo")
    assert best_quad < best_mc


def test_dimensionality_argument_is_structural():
    """Section II: MC's complexity is linear in dimensionality while
    lattices/quadrature blow up exponentially — visible in the work
    formulas without running anything."""
    def lattice_work(steps, dims):
        return steps ** (dims + 1)  # recombining tree nodes ~ N^(d+1)

    def mc_work(paths, steps, dims):
        return paths * steps * dims

    assert lattice_work(100, 3) / lattice_work(100, 1) == 100 ** 2
    assert mc_work(10_000, 100, 3) / mc_work(10_000, 100, 1) == 3
