"""E12 — single-precision kernel IV.B on the Stratix IV.

The related-work section observes that competing binomial accelerators
"can achieve better acceleration factors compared to a software
reference in specific cases, when restrictions on accuracy are either
alleviated (fixed precision implementations) or strengthened"; the
paper itself stays in double "for accuracy considerations".  This
ablation quantifies what the authors gave up: single precision shrinks
every operator, a wider parallelisation fits, and throughput roughly
doubles — at the very ~1e-3 RMSE the paper rejects.
"""

import pytest

from repro.bench.experiments import precision_ablation
from repro.devices.calibration import FPGA_PIPELINE_DERATE


@pytest.fixture(scope="module")
def ablation():
    return precision_ablation(accuracy_options=100)


def test_precision_ablation(benchmark, ablation, save_result):
    result = benchmark.pedantic(
        lambda: precision_ablation(accuracy_options=10),
        rounds=1, iterations=1,
    )
    save_result("precision_ablation", ablation.rendered)
    assert result.single_point.fits


def test_single_precision_fits_wider_parallelisation(ablation):
    double_lanes = ablation.double_point.parallel_lanes
    single_lanes = ablation.single_point.options.parallel_lanes
    assert single_lanes >= 2 * double_lanes


def test_single_precision_roughly_doubles_throughput(ablation):
    nodes = 1024 * 1025 / 2
    double_rate = (ablation.double_point.fmax_hz
                   * ablation.double_point.parallel_lanes
                   * FPGA_PIPELINE_DERATE / nodes)
    speedup = ablation.single_point.options_per_second / double_rate
    assert 1.8 < speedup < 5.0


def test_single_precision_pays_in_accuracy(ablation):
    """fp32 lands in the same ~1e-3 decade as the flawed double pow —
    no accuracy win over the defective operator, which is why the paper
    could not simply drop to single precision."""
    assert ablation.rmse_single > 1e-4
    assert ablation.rmse_single == pytest.approx(ablation.rmse_double,
                                                 rel=3.0)


def test_single_point_stays_within_power_envelope(ablation):
    """More lanes at a lower clock: power stays in the same band."""
    assert ablation.single_point.compiled.power_w < \
        ablation.double_point.power_w * 1.2
