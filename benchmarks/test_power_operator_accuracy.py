"""E8 — Section V.C: the Power-operator accuracy defect.

"Unfortunately, this kernel does not reach the accuracy levels
required for this application, with a RMSE of 1e-3 only. The same
kernel implemented on GPU has no accuracy issues. The source of this
inaccuracy has been isolated and is due to the use of the Power
operator."

The bench prices a 500-option batch at the paper's full N=1024 under
every math profile and checks the error decades.
"""

import pytest

from repro.bench import accuracy_experiment


@pytest.fixture(scope="module")
def accuracy():
    return accuracy_experiment(n_options=500)


def test_accuracy_experiment(benchmark, accuracy, save_result):
    result = benchmark.pedantic(
        lambda: accuracy_experiment(n_options=50), rounds=1, iterations=1
    )
    save_result("power_operator_accuracy", accuracy.rendered)
    assert set(result.rmses) == set(accuracy.rmses)


def test_fpga_double_rmse_decade(accuracy):
    """Kernel IV.B on the FPGA: RMSE of order 1e-3, as published."""
    value = accuracy.rmses["IV.B FPGA double (flawed pow)"]
    assert 3e-4 < value < 3e-3
    assert accuracy.classes["IV.B FPGA double (flawed pow)"] == "~1e-3"


def test_gpu_double_is_exact(accuracy):
    """'The same kernel implemented on GPU has no accuracy issues.'"""
    assert accuracy.classes["IV.B GPU double (exact pow)"] == "0"


def test_kernel_a_is_exact(accuracy):
    """'The Power operator is not used within the kernel IV.A as the
    tree leaves are computed by the host' — so IV.A stays exact.
    (The printed Table II marks IV.A-FPGA ~1e-3; we reproduce the
    text's analysis — recorded in EXPERIMENTS.md.)"""
    assert accuracy.classes["IV.A (host leaves, exact)"] == "0"


def test_single_precision_rmse_decade(accuracy):
    """fp32 rounding alone lands in the same ~1e-3 decade — the
    single-precision reference row of Table II."""
    value = accuracy.rmses["Reference single"]
    assert 3e-4 < value < 1e-2


def test_error_isolated_to_the_pow_operator(accuracy):
    """The flawed profile differs from exact double only through pow:
    kernel IV.A (no pow) is unaffected, kernel IV.B is."""
    assert accuracy.rmses["IV.A (host leaves, exact)"] < 1e-10
    assert accuracy.rmses["IV.B FPGA double (flawed pow)"] > 1e-4
