"""E5 — Figure 4: kernel IV.B's work-group dataflow, observed
functionally.

Runs the optimized kernel on the simulated DE4 and checks Section
IV.B's structure: one work-group per option with one work-item per
tree row, leaves initialised in-device, the shared value row in local
memory behind barrier/copy/compute phases, and host interaction
reduced to the three commands (write params / enqueue / read results).
"""

import numpy as np
import pytest

from repro.bench.tables import render_table
from repro.core import HostProgramB
from repro.devices import fpga_device
from repro.finance import generate_batch, price_binomial
from repro.opencl import CommandType

STEPS = 16
N_OPTIONS = 6


@pytest.fixture(scope="module")
def batch():
    return list(generate_batch(n_options=N_OPTIONS, seed=8).options)


def test_kernel_b_functional_dataflow(benchmark, batch, save_result):
    host = HostProgramB(fpga_device("iv_b"), STEPS)
    run = benchmark.pedantic(lambda: host.price(batch), rounds=1, iterations=1)

    reference = [price_binomial(o, STEPS).price for o in batch]
    assert np.allclose(run.prices, reference, rtol=1e-12)

    events = host.queue.events
    kernel_events = [e for e in events
                     if e.command_type is CommandType.NDRANGE_KERNEL]
    assert len(kernel_events) == 1                       # one enqueue
    launch = kernel_events[0]
    assert launch.info["global_size"] == N_OPTIONS * STEPS
    assert launch.info["local_size"] == STEPS            # row per work-item
    assert launch.info["work_groups"] == N_OPTIONS       # option per group

    # barrier pattern: 1 after leaf init + 2 per backward step
    assert run.barriers_per_group == 1 + 2 * STEPS
    # the shared V row lives in local memory
    assert run.local_bytes_per_group == (STEPS + 1) * 8
    # minimal host traffic: params down, one double per option back
    assert run.bytes_written == N_OPTIONS * 7 * 8
    assert run.bytes_read == N_OPTIONS * 8

    rows = [
        ("host commands", "write params, 1 enqueue, read results",
         "three commands (IV.B)"),
        ("work-groups", launch.info["work_groups"], "one option each"),
        ("work-group size", launch.info["local_size"], "N work-items"),
        ("barriers/group", run.barriers_per_group, "1 + 2N"),
        ("local memory/group", f"{run.local_bytes_per_group} B",
         "(N+1) doubles: the shared V row"),
        ("host bytes (write/read)", f"{run.bytes_written}/{run.bytes_read}",
         "56 B down + 8 B up per option"),
    ]
    save_result("fig4_kernel_b_dataflow",
                render_table(("structure", "observed", "paper"), rows,
                             title="Kernel IV.B dataflow (E5)"))


def test_host_traffic_ratio_vs_kernel_a(batch):
    """IV.B moves orders of magnitude fewer host bytes than IV.A."""
    from repro.core import HostProgramA

    run_b = HostProgramB(fpga_device("iv_b"), STEPS).price(batch)
    run_a = HostProgramA(fpga_device("iv_a"), STEPS).price(batch)
    assert run_a.bytes_read > 50 * run_b.bytes_read


def test_live_global_footprint_under_100kb(batch):
    """Section V.C: kernel IV.B uses 'at best less than 100 KB of
    global memory during computation' — check at the full N=1024 with a
    2000-option parameter buffer resident."""
    from repro.core.kernel_b import PARAM_FIELDS_B

    params_bytes = 2000 * len(PARAM_FIELDS_B) * 8
    results_bytes = 2000 * 8
    assert params_bytes + results_bytes < 150_000
    # per in-flight option the kernel touches only its row + result
    assert len(PARAM_FIELDS_B) * 8 + 8 < 100
