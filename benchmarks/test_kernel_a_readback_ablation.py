"""E7 — Section V.C: the modified kernel IV.A (reduced readback).

"A modified version of this kernel on GPU, with a reduced number of
read operations between host and device, has an acceleration factor 14
times better than the initial kernel version on the same hardware
(840 options/s vs 58.4 options/s)."
"""

import pytest

from repro.bench import published, readback_ablation
from repro.core import ReadbackMode, kernel_a_estimate
from repro.devices import fpga_compute_model, gpu_compute_model


@pytest.fixture(scope="module")
def ablation():
    return readback_ablation()


def test_readback_ablation(benchmark, ablation, save_result):
    result = benchmark(readback_ablation)
    save_result("kernel_a_readback_ablation", ablation.rendered)
    assert result.speedup_gpu > 1.0


def test_gpu_numbers_match_section_vc(ablation):
    assert ablation.gpu_full == pytest.approx(
        published.KERNEL_A_GPU_ORIGINAL_OPTIONS_PER_S, rel=0.03)
    assert ablation.gpu_result_only == pytest.approx(
        published.KERNEL_A_GPU_MODIFIED_OPTIONS_PER_S, rel=0.03)


def test_14x_speedup(ablation):
    assert ablation.speedup_gpu == pytest.approx(14.4, rel=0.10)


def test_fpga_same_order_of_magnitude_improvement(ablation):
    """'Modifications ... to run on the DE4 board are ongoing, but the
    same order of magnitude of acceleration can be expected.'"""
    speedup_fpga = ablation.fpga_result_only / ablation.fpga_full
    assert 5.0 < speedup_fpga < 100.0


def test_table2_kernel_a_rows_are_the_full_readback_points(ablation):
    assert ablation.fpga_full == pytest.approx(25, rel=0.03)
    assert ablation.gpu_full == pytest.approx(58.4, rel=0.03)


def test_readback_bytes_drive_the_gap():
    """The ablation's entire effect comes through the transfer term."""
    gpu = gpu_compute_model("iv_a")
    full = kernel_a_estimate(gpu, 1024, ReadbackMode.FULL_BUFFER)
    modified = kernel_a_estimate(gpu, 1024, ReadbackMode.RESULT_ONLY)
    # identical compute/power model: options/J scale with options/s
    assert modified.options_per_joule / full.options_per_joule == \
        pytest.approx(modified.options_per_second / full.options_per_second)
