"""E1 — Table I: resource usage of both kernels on the EP4SGX530.

Regenerates every row of the paper's Table I (logic utilisation,
registers, memory bits, M9K blocks, DSP elements, clock frequency,
power) by compiling the two kernel IRs through the HLS model with the
paper's exact parallelisation options (IV.A: vectorised x2, replicated
x3; IV.B: unrolled x2, vectorised x4).
"""

import pytest

from repro.bench import published, table1
from repro.bench.experiments import Table1Result
from repro.core import kernel_a_ir, kernel_b_ir
from repro.hls import KERNEL_A_OPTIONS, KERNEL_B_OPTIONS, compile_kernel


@pytest.fixture(scope="module")
def result() -> Table1Result:
    return table1()


def test_table1_regeneration(benchmark, result, save_result):
    """Benchmark one full compile of each kernel; check every cell."""

    def compile_both():
        return (
            compile_kernel(kernel_a_ir(), KERNEL_A_OPTIONS),
            compile_kernel(kernel_b_ir(1024), KERNEL_B_OPTIONS),
        )

    compiled_a, compiled_b = benchmark(compile_both)
    save_result("table1_resources", result.rendered)

    for key, compiled in (("iv_a", compiled_a), ("iv_b", compiled_b)):
        paper = published.TABLE1[key]
        resources = compiled.resources
        assert resources.fits()
        assert resources.logic_utilization == pytest.approx(
            paper.logic_utilization, rel=0.10)
        assert resources.registers == pytest.approx(paper.registers, rel=0.15)
        assert resources.memory_bits == pytest.approx(paper.memory_bits, rel=0.15)
        assert resources.m9k_blocks == pytest.approx(paper.m9k_blocks, rel=0.15)
        assert resources.dsp_18bit == pytest.approx(paper.dsp_18bit, rel=0.10)
        assert compiled.fit.fmax_mhz == pytest.approx(paper.clock_mhz, rel=0.10)
        assert compiled.power.total_w == pytest.approx(paper.power_w, rel=0.10)


def test_table1_qualitative_story(result):
    """The comparisons the paper draws from Table I."""
    a = result.compiled["iv_a"]
    b = result.compiled["iv_b"]
    # IV.A exhausts the chip; IV.B leaves headroom at a faster clock
    assert a.resources.logic_utilization > 0.9
    assert b.resources.logic_utilization < 0.8
    assert b.fit.fmax_hz > 1.5 * a.fit.fmax_hz
    # both kernels use "most of the M9K Block RAMs available" (V.B)
    assert a.resources.m9k_utilization > 0.85
    assert b.resources.m9k_utilization > 0.70
    # both power estimates exceed the 10 W budget (the paper's problem)
    assert a.power.total_w > published.PAPER_POWER_BUDGET_W
    assert b.power.total_w > published.PAPER_POWER_BUDGET_W
