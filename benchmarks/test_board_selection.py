"""E15 — Section V.C's third energy workaround: pick a smaller board.

"Besides, a less power consuming FPGA board can be selected that would
better fit our goal."

The bench re-targets kernel IV.B at the EP4SGX230 (the mid-range
sibling of the DE4's EP4SGX530: 43% of the logic, roughly half the
leakage) and compares the best fitting design points on both parts,
with and without the 10 W budget.
"""

import pytest

from repro.bench.published import PAPER_POWER_BUDGET_W
from repro.bench.tables import render_table
from repro.core import kernel_b_ir
from repro.core.sweep import select_board
from repro.devices.calibration import FPGA_PIPELINE_DERATE
from repro.hls import EP4SGX230, EP4SGX530

PARTS = (EP4SGX530, EP4SGX230)


def _select(budget):
    return select_board(kernel_b_ir(1024), PARTS, power_budget_w=budget,
                        pipeline_derate=FPGA_PIPELINE_DERATE)


@pytest.fixture(scope="module")
def unconstrained():
    return _select(None)


@pytest.fixture(scope="module")
def budgeted():
    return _select(PAPER_POWER_BUDGET_W)


def test_board_selection(benchmark, unconstrained, budgeted, save_result):
    result = benchmark.pedantic(lambda: _select(None), rounds=1, iterations=1)
    assert len(result) == 2
    rows = []
    for label, candidates in (("unconstrained", unconstrained),
                              (f"<= {PAPER_POWER_BUDGET_W:.0f} W", budgeted)):
        for c in candidates:
            rows.append((
                label, c.part.name,
                c.best.label if c.feasible else "-",
                f"{c.options_per_second:,.0f}" if c.feasible else "-",
                f"{c.power_w:.1f}" if c.feasible else "-",
            ))
    save_result("board_selection",
                render_table(("constraint", "part", "best point",
                              "options/s", "power W"), rows,
                             title="Board selection (E15)"))


def test_big_board_wins_unconstrained(unconstrained):
    big, small = unconstrained
    assert big.part is EP4SGX530
    assert big.options_per_second > small.options_per_second


def test_small_board_wins_under_the_budget(budgeted):
    """The paper's point: within the trader's 10 W, the smaller die's
    lower leakage buys more parallelism than the big board can afford."""
    big, small = budgeted
    assert small.feasible
    assert small.options_per_second > big.options_per_second
    assert small.power_w <= PAPER_POWER_BUDGET_W


def test_even_the_small_board_misses_2000_at_10w(budgeted):
    """No Stratix IV configuration meets 2000 options/s inside 10 W in
    double precision — why the conclusion also points at clock scaling
    and (implicitly) newer silicon."""
    _, small = budgeted
    assert small.options_per_second < 2000


def test_smaller_part_leaks_less(unconstrained):
    assert EP4SGX230.static_power_w < EP4SGX530.static_power_w
    big, small = unconstrained
    assert small.power_w < big.power_w
