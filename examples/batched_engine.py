"""Batched pricing engine: throughput without touching the arithmetic.

The paper's headline number is batch throughput (2,400 options/s on
the DE4 at N=1024), achieved by scheduling — one option per
work-group, work-groups packed onto compute units — not by changing
the recurrence.  This example walks the host-side analogue:

1. generate a synthetic option batch (one volatility curve's worth),
2. price it through the engine serially, watching the chunk plan,
3. price a *heterogeneous* stream (mixed tree depths) in one call,
4. compare engine output bit-for-bit against the direct simulator,
5. read the run's measured options/s and tree-nodes/s.

Run:  python examples/batched_engine.py
"""

import numpy as np

from repro import EngineConfig, PricingEngine, generate_batch
from repro.core import simulate_kernel_b_batch

STEPS = 256  # keep the example quick; the paper's full depth is 1024


def main() -> None:
    batch = generate_batch(n_options=400, seed=20140324)
    options = list(batch.options)
    print(f"Workload: {len(options)} American options, N={STEPS}")

    # -- 2. serial engine run ----------------------------------------------
    with PricingEngine(kernel="iv_b") as engine:
        print(f"\n{engine.describe()}")
        result = engine.run(options, steps=STEPS)
    stats = result.stats
    print(f"  chunks            : {stats.chunks} "
          f"(peak workspace {stats.peak_tile_bytes / 2**20:.2f} MiB)")
    print(f"  throughput        : {stats.options_per_second:,.0f} options/s, "
          f"{stats.tree_nodes_per_second:,.0f} tree nodes/s")

    # -- 3. heterogeneous stream: per-option depths, one call --------------
    depths = [128 if i % 3 else 512 for i in range(len(options))]
    with PricingEngine(kernel="iv_b") as engine:
        mixed = engine.run(options, steps=depths)
    print(f"\nHeterogeneous stream: {mixed.stats.groups} depth groups, "
          f"{mixed.stats.chunks} chunks, results in input order")

    # -- 4. scheduling never changes a bit ---------------------------------
    direct = simulate_kernel_b_batch(options, STEPS)
    identical = np.array_equal(result.prices, direct)
    print(f"\nEngine vs direct simulator: "
          f"{'bit-identical' if identical else 'MISMATCH'}")
    assert identical

    # -- 5. a Table II-style row for the host engine -----------------------
    row = stats.performance_row(label="Host engine", platform="this machine")
    print(f"Row: {row.label} / {row.platform} / "
          f"{row.options_per_second:,.0f} options/s")


if __name__ == "__main__":
    main()
