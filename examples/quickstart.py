"""Quickstart: price an American option on the simulated FPGA accelerator.

Walks the basic flow of the library in five steps:

1. describe a contract,
2. price it with the reference binomial software (the paper's baseline),
3. cross-check against the analytic/approximate oracles,
4. run it through the paper's kernel IV.B accelerator on the simulated
   Terasic DE4 board (flawed Altera-13.0 ``pow`` included),
5. read the modeled speed and energy.

Run:  python examples/quickstart.py
"""

import repro
from repro import BinomialAccelerator, Option, OptionType, bs_price, price_binomial
from repro.finance import baw_price, lattice_greeks

STEPS = 1024  # the paper's time discretisation


def main() -> None:
    option = Option(
        spot=100.0,
        strike=105.0,
        rate=0.03,
        volatility=0.25,
        maturity=1.0,
        option_type=OptionType.PUT,  # American put: early exercise matters
    )
    print(f"Contract: American put, S0={option.spot}, K={option.strike}, "
          f"r={option.rate}, sigma={option.volatility}, T={option.maturity}")

    # -- 2. the paper's reference software ---------------------------------
    reference = price_binomial(option, steps=STEPS)
    print(f"\nReference binomial (N={STEPS}):    {reference.price:.6f}")
    print(f"  tree nodes evaluated:            {reference.tree_nodes:,}")

    # -- 3. independent cross-checks ----------------------------------------
    print(f"Barone-Adesi-Whaley approximation: {baw_price(option):.6f}")
    print(f"European twin (Black-Scholes):     {bs_price(option.as_european()):.6f}"
          "   (American >= European)")
    greeks = lattice_greeks(option, steps=512)
    print(f"Greeks: delta={greeks.delta:+.4f}  gamma={greeks.gamma:.4f}  "
          f"vega={greeks.vega:.2f}  theta={greeks.theta:+.2f}")

    # -- 4. the paper's accelerator -----------------------------------------
    accelerator = BinomialAccelerator(platform="fpga", kernel="iv_b",
                                      steps=STEPS)
    print(f"\nAccelerator: {accelerator.describe()}")
    compiled = accelerator.compiled
    print("HLS compile (Table I style):")
    for line in compiled.fitter_summary().splitlines():
        print(f"  {line}")

    result = repro.price([option], steps=STEPS, device=accelerator)
    error = result.prices[0] - reference.price
    print(f"\nAccelerator price:                 {result.prices[0]:.6f}")
    print(f"  error vs reference:              {error:+.2e}"
          "   (the Altera 13.0 pow defect, paper Section V.C)")

    # -- 5. modeled cost -----------------------------------------------------
    perf = accelerator.performance()
    print(f"\nModeled performance (post-saturation):")
    print(f"  {perf.options_per_second:,.0f} options/s, "
          f"{perf.options_per_joule:.0f} options/J at {perf.power_w:.1f} W")
    print(f"  2000-option volatility curve:    "
          f"{perf.steady_state_time_for(2000):.3f} s  (paper target: < 1 s)")


if __name__ == "__main__":
    main()
