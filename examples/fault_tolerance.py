"""Fault-tolerant pricing: retries, quarantine, and transport recovery.

A pricing service at production scale sees crashed workers, hung
chunks, NaN market data and failed host<->device transfers as routine
events — the data-centre FPGA deployment literature treats recoverable
transport errors as a first-class concern, and the paper's own kernel
IV.A discussion is a story about host/device interaction fragility.
This example drives every failure mode deterministically:

1. a transient worker fault healed by retry (prices stay bit-identical),
2. a poison option isolated by quarantine bisection — the other N-1
   prices still bit-identical, the failure reported structurally,
3. a simulated PCIe transfer fault on the OpenCL command queue,
   recovered with a seeded retry/backoff policy.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import EngineConfig, PricingEngine, generate_batch
from repro.core import simulate_kernel_b_batch
from repro.engine import (
    ALWAYS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    TransportFaultInjector,
    retry_call,
)
from repro.errors import TransportFaultError
from repro.opencl import Context, Device, DeviceType

STEPS = 64  # keep the example quick; the paper's full depth is 1024


def main() -> None:
    options = list(generate_batch(n_options=128, seed=20140324).options)
    reference = simulate_kernel_b_batch(options, STEPS)
    print(f"Workload: {len(options)} American options, N={STEPS}")

    # -- 1. transient fault: retry heals it --------------------------------
    plan = FaultPlan(specs=(
        FaultSpec(option_index=7, kind=FaultKind.RAISE, attempts=1),
    ))
    config = EngineConfig(chunk_options=16, max_retries=2,
                          backoff_base_s=0.001)
    with PricingEngine(kernel="iv_b", config=config, faults=plan) as engine:
        print(f"\n{engine.describe()}")
        healed = engine.run(options, steps=STEPS)
    print(f"Transient worker fault: {healed.stats.describe()}")
    assert np.array_equal(healed.prices, reference)
    print("  -> retried and bit-identical, no failures reported")

    # -- 2. poison option: quarantined, batch completes --------------------
    plan = FaultPlan(specs=(
        FaultSpec(option_index=42, kind=FaultKind.NAN, attempts=ALWAYS),
    ))
    with PricingEngine(kernel="iv_b", config=config, faults=plan) as engine:
        degraded = engine.run(options, steps=STEPS)
    print(f"\nPoison option: {degraded.stats.describe()}")
    for record in degraded.failures:
        print(f"  failure: option {record.index} / {record.error} after "
              f"{record.attempts} attempts / {record.message}")
    mask = np.ones(len(options), dtype=bool)
    mask[42] = False
    assert np.array_equal(degraded.prices[mask], reference[mask])
    assert np.isnan(degraded.prices[42])
    print(f"  -> {mask.sum()} of {len(options)} prices bit-identical; the "
          f"poison option came back NaN instead of failing the batch")

    # -- 3. transport fault on the simulated OpenCL queue ------------------
    device = Device("demo", DeviceType.ACCELERATOR, compute_units=2,
                    max_work_group_size=256)
    injector = TransportFaultInjector(seed=7, fail_transfers=(0,))
    context = Context(device)
    queue = context.create_queue(fault_injector=injector)
    buffer = context.create_buffer(1024)
    payload = np.linspace(0.0, 1.0, 1024)

    retries = []
    retry_call(
        lambda: queue.enqueue_write_buffer(buffer, payload),
        policy=RetryPolicy(max_retries=3, backoff_base_s=0.001),
        key="host-write",
        retry_on=(TransportFaultError,),
        on_retry=lambda attempt, exc: retries.append(str(exc)),
    )
    print(f"\nTransport fault injection on the command queue:")
    print(f"  first enqueue failed with: {retries[0]}")
    print(f"  retry recovered it; device buffer now holds "
          f"{injector.transfer_calls - injector.transfer_faults} "
          f"successful transfer(s)")
    assert np.array_equal(buffer._host_read(), payload)
    print("\nEvery failure above replays identically: fault plans and "
          "transport schedules are pure functions of their seeds.")


if __name__ == "__main__":
    main()
