"""Trace both kernel architectures through the OpenCL simulator.

Runs the two host programs of the paper (Figures 3 and 4) at a small
tree size and prints what actually moved: every command-queue event
with its simulated timestamps, the host<->device transfer ledger, and
the work-group/barrier statistics.  This makes the paper's central
argument — kernel IV.A drowns in per-batch readback while kernel IV.B
touches the host three times — directly visible.

Run:  python examples/kernel_dataflow_trace.py
"""

from repro import HostProgramA, HostProgramB
from repro.devices import fpga_device
from repro.finance import generate_batch
from repro.opencl import TransferDirection

STEPS = 8
N_OPTIONS = 4


def show_events(queue, limit=14):
    print(f"  {'t_start':>12} {'dur':>10}  command")
    for event in queue.events[:limit]:
        print(f"  {event.start_ns / 1e3:>10.1f}us {event.duration_ns / 1e3:>8.1f}us"
              f"  {event.command_type.value:<16} {event.name}")
    if len(queue.events) > limit:
        print(f"  ... {len(queue.events) - limit} more events")


def show_ledger(queue):
    h2d = queue.transfers.total_bytes(TransferDirection.HOST_TO_DEVICE)
    d2h = queue.transfers.total_bytes(TransferDirection.DEVICE_TO_HOST)
    print(f"  host->device: {h2d:>8,} B in "
          f"{queue.transfers.count(TransferDirection.HOST_TO_DEVICE)} transfers")
    print(f"  device->host: {d2h:>8,} B in "
          f"{queue.transfers.count(TransferDirection.DEVICE_TO_HOST)} transfers")
    print(f"  time in transfers: {queue.transfer_time_ns() / 1e6:.3f} ms; "
          f"in kernels: {queue.kernel_time_ns() / 1e6:.3f} ms")


def main() -> None:
    batch = list(generate_batch(n_options=N_OPTIONS, seed=1).options)

    print(f"=== Kernel IV.A (Figure 3) — N={STEPS}, {N_OPTIONS} options ===")
    host_a = HostProgramA(fpga_device("iv_a"), STEPS)
    run_a = host_a.price(batch)
    print(f"batches: {run_a.batches} (one option exits per batch once the "
          f"{STEPS + 1}-deep pipeline fills)")
    show_events(host_a.queue)
    show_ledger(host_a.queue)
    print(f"prices: {run_a.prices.round(4)}")

    print(f"\n=== Kernel IV.B (Figure 4) — same workload ===")
    host_b = HostProgramB(fpga_device("iv_b"), STEPS)
    run_b = host_b.price(batch)
    show_events(host_b.queue)
    show_ledger(host_b.queue)
    print(f"  barriers/work-group: {run_b.barriers_per_group} "
          f"(1 leaf + 2 per backward step)")
    print(f"  local memory/group:  {run_b.local_bytes_per_group} B "
          "(the shared V row)")
    print(f"prices: {run_b.prices.round(4)}")

    from repro.core import render_timeline

    print("\n=== Timelines (W=write R=read K=kernel) ===")
    print("kernel IV.A (first 20 events):")
    print(render_timeline(host_a.queue.events, max_events=20))
    print("kernel IV.B (all events):")
    print(render_timeline(host_b.queue.events))

    ratio = run_a.bytes_read / max(run_b.bytes_read, 1)
    print(f"\nkernel IV.A read back {ratio:,.0f}x more bytes than IV.B "
          "for the same options — the paper's Section V.C diagnosis.")
    import numpy as np

    assert np.allclose(run_a.prices, run_b.prices, rtol=1e-12)
    print("both architectures produced matching prices (to 1e-12; the "
          "leaf-init op order differs by design).")


if __name__ == "__main__":
    main()
