"""Reproduce the paper's evaluation tables from the library API.

Prints Table I (resource usage of both kernels on the Stratix IV),
Table II (performance across FPGA / GPU / CPU), the saturation sweep
of Section V.C, and the kernel IV.A readback ablation — each next to
the paper's published numbers.

Run:  python examples/platform_comparison.py        (takes ~1 minute:
the Table II accuracy column actually prices hundreds of options at
N=1024 under every math profile)
"""

from repro.bench import (
    readback_ablation,
    saturation_sweep,
    table1,
    table2,
)


def main() -> None:
    print(table1().rendered)
    print()
    print(table2(accuracy_options=200).rendered)
    print()
    print(saturation_sweep().rendered)
    print()
    print(readback_ablation().rendered)
    print()
    print("Notes:")
    print(" * kernel IV.A GPU is calibrated to Section V.C's 58.4 options/s;")
    print("   Table II prints 53 (paper-internal inconsistency).")
    print(" * IV.A-FPGA RMSE reproduces the Section V.C analysis (exact,")
    print("   host-computed leaves); the printed table marks it ~1e-3.")
    print(" * literature rows [9]/[10] are carried as printed.")


if __name__ == "__main__":
    main()
