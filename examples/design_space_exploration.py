"""Design-space exploration: the compile loop behind Section V.B.

The paper chose kernel IV.A's (vectorize x2, replicate x3) and kernel
IV.B's (unroll x2, vectorize x4) "after several compilation iterations
to find the best resource consumption rate".  This example automates
that loop over the HLS model: it compiles every (V, R, U) combination,
ranks the fitting points by throughput and energy efficiency, and then
walks the paper's two energy workarounds (under-clocking, lower
parallelism) toward the 10 W budget.

The run-time half of the exploration — which (depth, kernel) condition
actually prices best once accuracy is on the table — goes through the
resumable scenario-sweep layer (``repro.sweep``): a small grid runs as
service traffic into a persisted run store, and the frontier report
marks the Pareto points over accuracy × options/s × modeled energy.

Run:  python examples/design_space_exploration.py
"""

import tempfile
from pathlib import Path

from repro.bench.published import PAPER_POWER_BUDGET_W
from repro.core import (
    explore_design_space,
    fit_power_budget,
    frequency_scaling,
    kernel_b_ir,
)
from repro.devices.calibration import FPGA_PIPELINE_DERATE
from repro.hls import KERNEL_B_OPTIONS, compile_kernel
from repro.sweep import (
    RunStore,
    SweepRunner,
    SweepSpec,
    frontier_report,
    render_frontier,
)

STEPS = 1024


def main() -> None:
    print("=== Kernel IV.B design space on the EP4SGX530 ===")
    points = explore_design_space(
        kernel_b_ir(STEPS), steps=STEPS,
        simd_widths=(1, 2, 4, 8), compute_units=(1, 2), unrolls=(1, 2, 4),
        pipeline_derate=FPGA_PIPELINE_DERATE,
    )
    header = (f"{'configuration':<38} {'fits':>5} {'logic':>7} {'MHz':>8} "
              f"{'W':>6} {'opt/s':>9} {'opt/J':>8}")
    print(header)
    print("-" * len(header))
    for p in points:
        if p.fits:
            r = p.compiled
            print(f"{p.label:<38} {'yes':>5} "
                  f"{r.resources.logic_utilization:>6.0%} "
                  f"{r.fit.fmax_mhz:>8.1f} {r.power.total_w:>6.1f} "
                  f"{p.options_per_second:>9,.0f} {p.options_per_joule:>8.1f}")
        else:
            print(f"{p.label:<38} {'NO':>5} {'-':>7} {'-':>8} {'-':>6} "
                  f"{'-':>9} {'-':>8}")

    paper = [p for p in points
             if p.options.num_simd_work_items == 4 and p.options.unroll == 2
             and p.options.num_compute_units == 1][0]
    best = points[0]
    print(f"\npaper's point:  {paper.label} -> "
          f"{paper.options_per_second:,.0f} options/s")
    print(f"model's best:   {best.label} -> "
          f"{best.options_per_second:,.0f} options/s")

    print("\n=== Energy workaround: under-clocking (Section V.C) ===")
    compiled = compile_kernel(kernel_b_ir(STEPS), KERNEL_B_OPTIONS)
    for point in frequency_scaling(compiled, STEPS,
                                   fractions=(1.0, 0.8, 0.6, 0.4),
                                   pipeline_derate=FPGA_PIPELINE_DERATE):
        marker = " <= 10 W" if point.power_w <= PAPER_POWER_BUDGET_W else ""
        print(f"  {point.clock_mhz:6.1f} MHz  {point.power_w:5.2f} W  "
              f"{point.options_per_second:7,.0f} options/s{marker}")

    budget = fit_power_budget(compiled, PAPER_POWER_BUDGET_W, STEPS,
                              pipeline_derate=FPGA_PIPELINE_DERATE)
    print(f"\nhighest clock inside {PAPER_POWER_BUDGET_W:.0f} W: "
          f"{budget.clock_mhz:.1f} MHz -> "
          f"{budget.options_per_second:,.0f} options/s "
          f"({'meets' if budget.options_per_second >= 2000 else 'misses'} "
          "the 2000 options/s target)")

    print("\n=== Run-time frontier via the scenario-sweep layer ===")
    spec = SweepSpec(
        name="dse-runtime-frontier",
        axes={"steps": (64, 128), "kernel": ("iv_b", "reference")},
        base={"n_options": 8, "reference_steps": 256},
    )
    store_path = Path(tempfile.mkdtemp()) / "dse_sweep.jsonl"
    stats = SweepRunner(spec, store_path).run()
    print(f"(sweep {spec.name!r}: {stats.done} cells committed to "
          f"{store_path.name}; the report below is a pure read — "
          f"killed runs resume, finished grids are no-ops)")
    print(render_frontier(frontier_report(RunStore(store_path))))


if __name__ == "__main__":
    main()
