"""The paper's motivating use case: a trader's implied-volatility curve.

Section I: the accelerator exists so a trader can refresh one implied
volatility curve (~2000 binomial option evaluations) every second on
a <20 W budget.  This example builds a synthetic market snapshot with
a known volatility smile, prices it, then recovers the smile through
the simulated FPGA accelerator — flawed ``pow`` and all — and reports
the time/energy verdict at the paper's full configuration.

Run:  python examples/volatility_curve.py
"""

import numpy as np
import repro

from repro import BinomialAccelerator
from repro.finance import generate_curve_scenario, implied_vol_curve

CURVE_STEPS = 256       # lattice depth for the interactive solve demo
FULL_STEPS = 1024       # the paper's configuration for the verdict
N_STRIKES = 15


def main() -> None:
    print("=== Synthetic market snapshot ===")
    scenario = generate_curve_scenario(n_strikes=N_STRIKES, steps=CURVE_STEPS,
                                       pricing_steps=CURVE_STEPS)
    base = scenario.base_option
    print(f"underlying at {base.spot}, r={base.rate}, T={base.maturity}; "
          f"{N_STRIKES} strikes from {scenario.strikes[0]:.1f} "
          f"to {scenario.strikes[-1]:.1f}")

    print("\n=== Solving implied vols through the FPGA accelerator ===")
    accelerator = BinomialAccelerator(platform="fpga", kernel="iv_b",
                                      steps=CURVE_STEPS)

    def engine(option):
        return float(repro.price([option], steps=CURVE_STEPS,
                                 device=accelerator).prices[0])

    points = implied_vol_curve(base, scenario.strikes, scenario.market_prices,
                               price_fn=engine, steps=CURVE_STEPS)

    print(f"{'strike':>8} {'quote':>10} {'true vol':>9} {'implied':>9} "
          f"{'error':>10} {'evals':>6}")
    total_evals = 0
    for point, true_vol in zip(points, scenario.true_vols):
        error = point.implied_vol - true_vol
        total_evals += point.evaluations
        print(f"{point.strike:8.2f} {point.market_price:10.4f} "
              f"{true_vol:9.4f} {point.implied_vol:9.4f} "
              f"{error:+10.2e} {point.evaluations:6d}")

    recovered = np.array([p.implied_vol for p in points])
    print(f"\nsmile recovered to max |error| = "
          f"{np.abs(recovered - scenario.true_vols).max():.2e} "
          f"({total_evals} engine evaluations)")

    print("\n=== The paper's 2000-options-per-second verdict (N=1024) ===")
    full = BinomialAccelerator(platform="fpga", kernel="iv_b", steps=FULL_STEPS)
    perf = full.performance()
    curve_time = perf.steady_state_time_for(2000)
    curve_energy = curve_time * perf.power_w
    print(f"one 2000-option curve: {curve_time:.3f} s at {perf.power_w:.1f} W "
          f"-> {curve_energy:.1f} J per curve")
    print(f"target met: {'YES' if curve_time < 1.0 else 'NO'} "
          f"(< 1 s); power {'within' if perf.power_w < 20 else 'beyond'} "
          "the abstract's 20 W")


if __name__ == "__main__":
    main()
