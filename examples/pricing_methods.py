"""The method landscape behind the paper's choice of a binomial tree.

Section II positions the lattice against Monte Carlo (massively
parallel, slow convergence) and quadrature (Jin et al.'s accuracy
champion).  This example prices one American put with all three
methods at increasing work budgets and prints the error-vs-work
landscape — the evidence behind "tree-based methods are optimal when
time-to-solution is a key constraint".

Run:  python examples/pricing_methods.py    (~30 s: the Monte Carlo
points simulate up to 400k paths)
"""

from repro.finance import (
    Option,
    OptionType,
    price_american_lsmc,
    price_binomial,
    price_quadrature,
)

OPTION = Option(spot=100.0, strike=100.0, rate=0.05, volatility=0.30,
                maturity=1.0, option_type=OptionType.PUT)


def main() -> None:
    reference = price_binomial(OPTION, 16384).price
    print(f"deep-lattice reference: {reference:.6f}\n")
    print(f"{'method':<14} {'configuration':<28} {'work units':>12} "
          f"{'price':>10} {'|error|':>10}")

    for steps in (64, 256, 1024):
        value = price_binomial(OPTION, steps).price
        work = steps * (steps + 1) // 2
        print(f"{'binomial':<14} {f'N={steps}':<28} {work:>12,} "
              f"{value:>10.5f} {abs(value - reference):>10.2e}")

    for paths in (4_000, 40_000, 400_000):
        result = price_american_lsmc(OPTION, paths=paths, steps=50, seed=42)
        work = paths * 50
        print(f"{'monte-carlo':<14} {f'{paths:,} paths x 50 steps':<28} "
              f"{work:>12,} {result.price:>10.5f} "
              f"{abs(result.price - reference):>10.2e}"
              f"   (stderr {result.std_error:.1e})")

    for dates, grid in ((16, 257), (64, 513), (256, 1025)):
        value = price_quadrature(OPTION, dates, grid)
        work = dates * grid * grid
        print(f"{'quadrature':<14} {f'{dates} dates x {grid} grid':<28} "
              f"{work:>12,} {value:>10.5f} {abs(value - reference):>10.2e}")

    print("\nReadings (the paper's Section II, quantified):")
    print(" * the lattice reaches ~1e-3 with the least work of the three")
    print("   ([12]: tree-based methods win on time-to-solution);")
    print(" * Monte Carlo's error shrinks as paths^-1/2 and its LSMC")
    print("   policy bias floors around 1e-2 ('slow convergence rate');")
    print(" * quadrature out-converges MC deterministically but needs far")
    print("   more kernel evaluations on this one-dimensional problem —")
    print("   its (and MC's) advantages appear with dimensionality, which")
    print("   is exactly where the paper says the lattice stops applying.")


if __name__ == "__main__":
    main()
