"""The pricing service: coalescing concurrent requests into batches.

The paper's accelerator is fast on *large batches* (one parameter
write, one kernel sweep, one result read — Section IV.B), but real
pricing traffic is many small concurrent requests.
``repro.PricingService`` bridges the two: concurrent single-option
submits are coalesced into engine-sized micro-batches, executed once,
and scattered back to per-request futures — bitwise-identical to
pricing the whole book directly, because the engine's per-option math
is row-independent.

This example:

1. prices a book directly through one engine run (the baseline),
2. re-prices it as 64 concurrent clients submitting one option at a
   time through a ``PricingService`` and verifies bitwise parity,
3. shows the content-keyed result cache: an identical whole-book
   request is a sub-millisecond hit,
4. shows per-request failure scoping: a poisoned request gets NaN +
   a failure record, its coalesced neighbours never notice,
5. prints the service's lifetime stats (flush reasons, cache
   counters, wait/flush-size means).

Run:  python examples/pricing_service.py
"""

import math
import threading
import time

import numpy as np

import repro
from repro import PricingRequest, PricingService, ServiceConfig
from repro.engine.engine import PricingEngine

STEPS = 256  # keep the example quick; production depth would be 512+
KERNEL = "iv_b"
CLIENTS = 64


def main() -> None:
    book = list(repro.generate_batch(n_options=512, seed=20140324).options)
    print(f"Book: {len(book)} American options, N={STEPS}, "
          f"kernel {KERNEL}\n")

    # -- 1. the baseline: one direct engine run ----------------------------
    with PricingEngine(kernel=KERNEL) as engine:
        start = time.perf_counter()
        direct = engine.run(book, STEPS)
        direct_wall = time.perf_counter() - start
    print(f"Direct engine.run:      {len(book) / direct_wall:8,.0f} "
          f"options/s  (one {len(book)}-option batch)")

    # -- 2. the same book as concurrent single-option requests -------------
    config = ServiceConfig(max_batch=CLIENTS, max_wait_ms=2.0)
    prices = np.empty(len(book))

    with PricingService(config) as service:
        def client(start_index: int) -> None:
            for i in range(start_index, len(book), CLIENTS):
                request = PricingRequest(options=(book[i],), steps=STEPS,
                                         kernel=KERNEL)
                prices[i] = service.submit(request).result().prices[0]

        threads = [threading.Thread(target=client, args=(t,))
                   for t in range(CLIENTS)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service_wall = time.perf_counter() - start

        identical = bool(np.array_equal(prices, direct.prices))
        print(f"{CLIENTS} coalesced clients:  "
              f"{len(book) / service_wall:8,.0f} options/s  "
              f"({direct_wall / service_wall:.0%} of the direct rate, "
              f"bitwise identical: {identical})")
        assert identical

        # -- 3. the content-keyed cache ------------------------------------
        whole_book = PricingRequest(options=tuple(book), steps=STEPS,
                                    kernel=KERNEL)
        start = time.perf_counter()
        cold = service.submit(whole_book).result()
        cold_wall = time.perf_counter() - start
        start = time.perf_counter()
        hit = service.submit(whole_book).result()
        hit_wall = time.perf_counter() - start
        print(f"\nWhole-book request:  cold {cold_wall * 1e3:7.1f} ms   "
              f"hit {hit_wall * 1e3:7.3f} ms   "
              f"({cold_wall / hit_wall:,.0f}x, cache_hit={hit.cache_hit})")
        assert not cold.cache_hit and hit.cache_hit

        # -- 4. failure scoping: one bad request fails alone ---------------
        import dataclasses
        poisoned_option = dataclasses.replace(book[0])
        object.__setattr__(poisoned_option, "volatility", float("nan"))
        poisoned = PricingRequest(options=(poisoned_option,), steps=STEPS,
                                  kernel=KERNEL, strict=False)
        neighbour = PricingRequest(options=(book[1],), steps=STEPS,
                                   kernel=KERNEL)
        bad_future = service.submit(poisoned)
        good_future = service.submit(neighbour)
        bad, good = bad_future.result(), good_future.result()
        print(f"\nPoisoned request:    price={bad.prices[0]} "
              f"failures={len(bad.failures)} "
              f"({bad.failures[0].error})")
        print(f"Coalesced neighbour: price={good.prices[0]:.6f} "
              f"failures={len(good.failures)}  (unaffected)")
        assert math.isnan(bad.prices[0]) and not good.failures

        stats = service.close()

    # -- 5. what the service did, in numbers -------------------------------
    print(f"\nService lifetime stats ({repro.obs.keys.SERVICE_STATS_SCHEMA}):")
    for key, value in stats.as_dict().items():
        print(f"  {key:20s} {value:.6g}" if isinstance(value, float)
              else f"  {key:20s} {value}")


if __name__ == "__main__":
    main()
