"""Batched greeks: five sensitivities from one engine workload.

A trading desk rarely wants just prices — hedging needs delta, gamma,
theta, vega and rho for every position.  The classical lattice trick
(Hull) reads delta/gamma/theta off tree levels 0..2 of the *same*
backward pass that prices the option; vega and rho come from
bump-and-reprice central differences.  ``repro.greeks`` batches the
whole thing through the pricing engine: one level-capturing pass plus
four bump passes scheduled as sibling chunk groups.

This example:

1. generates a book of American options,
2. computes all five greeks in one ``repro.greeks`` call,
3. cross-checks a few positions against the scalar oracle
   (``lattice_greeks``) and against central differences of the
   reference pricer,
4. aggregates book-level exposures the way a risk report would,
5. shows the run's stats — including the bump-pass counters.

Run:  python examples/greeks_study.py
"""

from dataclasses import replace

import repro
from repro.finance import price_binomial
from repro.finance.greeks import lattice_greeks

STEPS = 128  # keep the example quick; production depth would be 512+


def main() -> None:
    book = list(repro.generate_batch(n_options=300, seed=20140324).options)
    print(f"Book: {len(book)} American options, N={STEPS}")

    # -- 2. one call, five greeks per option -------------------------------
    result = repro.greeks(book, steps=STEPS, kernel="iv_b", workers=None)
    print(f"\nFirst three positions (spot/strike -> greeks):")
    for i in range(3):
        o = book[i]
        print(f"  {o.option_type.value:4s} S={o.spot:7.2f} K={o.strike:7.2f}"
              f"  price={result.prices[i]:8.4f} delta={result.delta[i]:+.4f}"
              f" gamma={result.gamma[i]:.4f} theta={result.theta[i]:+.4f}"
              f" vega={result.vega[i]:.4f} rho={result.rho[i]:+.4f}")

    # -- 3a. scalar oracle: same lattice trick, one option at a time -------
    worst = 0.0
    for i in (0, len(book) // 2, len(book) - 1):
        oracle = lattice_greeks(book[i], steps=STEPS)
        worst = max(
            worst,
            abs(result.delta[i] - oracle.delta),
            abs(result.gamma[i] - oracle.gamma),
            abs(result.theta[i] - oracle.theta),
            abs(result.vega[i] - oracle.vega),
            abs(result.rho[i] - oracle.rho),
        )
    print(f"\nEngine vs scalar lattice_greeks oracle: "
          f"worst |diff| = {worst:.2e}")
    assert worst <= 1e-9

    # -- 3b. sanity vs bump-and-reprice of the reference pricer ------------
    o = book[0]
    h = o.spot * 1e-4
    fd_delta = (
        price_binomial(replace(o, spot=o.spot + h), STEPS).price
        - price_binomial(replace(o, spot=o.spot - h), STEPS).price
    ) / (2 * h)
    print(f"Position 0 delta: lattice {result.delta[0]:+.6f} vs "
          f"spot-bump FD {fd_delta:+.6f} "
          f"(diff {abs(result.delta[0] - fd_delta):.1e})")

    # -- 4. book-level exposures -------------------------------------------
    print("\nBook aggregates (sum over positions):")
    print(f"  net delta : {result.delta.sum():+10.2f}")
    print(f"  net gamma : {result.gamma.sum():+10.4f}")
    print(f"  net theta : {result.theta.sum():+10.2f} per year")
    print(f"  net vega  : {result.vega.sum():+10.2f} per vol point")
    print(f"  net rho   : {result.rho.sum():+10.2f} per rate point")

    # -- 5. the run's stats know about the bump passes ---------------------
    stats = result.stats
    print(f"\nRun stats: {stats.options} tree pricings "
          f"({stats.greeks_options} options x 5 passes), "
          f"{stats.bump_passes} bump passes, {stats.chunks} chunks, "
          f"{stats.options_per_second:,.0f} pricings/s")


if __name__ == "__main__":
    main()
