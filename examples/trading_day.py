"""A full trading day on each platform: the use case, end to end.

Section I sizes the accelerator for a trader refreshing one implied
volatility curve (2000 options) every second from a workstation.  This
example projects the calibrated models over a 6.5-hour session —
including idle draw between refreshes — and prints the numbers a desk
would compare: can the platform hold the refresh rate, and what does a
day of curves cost in energy?

Run:  python examples/trading_day.py
"""

from repro.core import kernel_b_estimate, reference_estimate
from repro.core.session import TYPICAL_IDLE_POWER_W, TradingSessionModel
from repro.devices import (
    cpu_compute_model,
    fpga_compute_model,
    gpu_compute_model,
)

HOURS = 6.5


def main() -> None:
    sessions = (
        TradingSessionModel(
            kernel_b_estimate(fpga_compute_model("iv_b"), 1024),
            TYPICAL_IDLE_POWER_W["fpga"], "FPGA DE4 / kernel IV.B"),
        TradingSessionModel(
            kernel_b_estimate(gpu_compute_model("iv_b"), 1024),
            TYPICAL_IDLE_POWER_W["gpu"], "GPU GTX660 Ti / kernel IV.B"),
        TradingSessionModel(
            reference_estimate(cpu_compute_model("double"), 1024),
            TYPICAL_IDLE_POWER_W["cpu"], "CPU Xeon / reference sw"),
    )

    print(f"{HOURS}-hour session, one 2000-option curve per second:\n")
    header = (f"{'configuration':<28} {'keeps rate':>10} {'curves':>8} "
              f"{'duty':>6} {'energy':>10} {'J/curve':>9}")
    print(header)
    print("-" * len(header))
    for model in sessions:
        report = model.session(hours=HOURS)
        print(f"{report.configuration:<28} "
              f"{'yes' if report.meets_refresh_rate else 'NO':>10} "
              f"{report.curves_refreshed:>8,} "
              f"{report.busy_fraction:>6.0%} "
              f"{report.total_energy_wh:>8.1f} Wh "
              f"{report.energy_per_curve_j:>9.2f}")

    fpga = sessions[0].session(hours=HOURS)
    gpu = sessions[1].session(hours=HOURS)
    print(f"\nThe session view sharpens the paper's energy argument: per")
    print(f"curve the FPGA is ~2x more efficient than the GPU (Table II),")
    print(f"but over a day — idle draw included — the gap widens to "
          f"{gpu.total_energy_j / fpga.total_energy_j:.1f}x,")
    print("and only the FPGA stays inside a workstation-class power "
          "envelope throughout.")


if __name__ == "__main__":
    main()
