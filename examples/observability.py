"""Observability walk-through: span trees, lane timelines, metrics.

The paper explains its implementation with three kinds of evidence:
the Figure 3/4 dataflow diagrams (which command runs on which engine,
when), the Table II throughput columns, and the Section V.C detective
work that pins an accuracy anomaly on one operator.  `repro.obs`
produces the same three views from live runs:

1. trace an engine run and print its span hierarchy
   (run -> group -> chunk -> attempt), reliability annotations
   included;
2. attach a span to a simulated command queue and replay the
   queue-command leaves as the DMA/kernel lane Gantt of Figure 4;
3. dump the process-wide metrics registry in Prometheus text format
   (throughput gauges, retry/quarantine counters, PCIe byte counters).

Run:  python examples/observability.py
"""

from repro import generate_batch, price
from repro.core.host_b import HostProgramB
from repro.devices import fpga_device
from repro.obs import (
    Tracer,
    chunk_span_seconds,
    get_registry,
    render_queue_timeline,
    render_span_tree,
)

STEPS = 64  # keep the example quick; the paper's full depth is 1024


def main() -> None:
    batch = list(generate_batch(n_options=48, seed=20140324).options)

    print("=== 1. A traced engine run ===")
    tracer = Tracer()
    result = price(batch, steps=STEPS, kernel="iv_b", tracer=tracer)
    root = tracer.as_dicts()[0]
    print(render_span_tree(root, max_children=4))
    covered = chunk_span_seconds(root)
    wall = result.stats.wall_time_s
    print(f"-> chunk spans cover {covered:.4f}s of the {wall:.4f}s run "
          f"({covered / wall:.0%}): the tree accounts for the wall clock,")
    print("   and every retry/quarantine would annotate the exact span")
    print("   where it happened.")

    print("\n=== 2. The simulated queue as Figure 4's lanes ===")
    program = HostProgramB(fpga_device("iv_b"), steps=STEPS)
    session = Tracer()
    span = session.start_span("device-session", "run", program="host_b")
    program.queue.attach_span(span)
    try:
        program.price(batch[:8])
    finally:
        program.queue.detach_span()
    span.end()
    print(render_queue_timeline(session.as_dicts()))
    print("-> write / kernel / read on their engines, reconstructed from")
    print("   the trace alone — the temporal counterpart of Figure 4.")

    print("\n=== 3. The metrics registry, Prometheus text ===")
    text = get_registry().render_prometheus()
    shown = 0
    for line in text.splitlines():
        if line.startswith(("repro_engine_options", "repro_engine_retries",
                            "repro_engine_quarantined", "repro_link_",
                            "repro_queue_")):
            print(line)
            shown += 1
    print(f"-> {shown} of the samples; the full exposition (histograms and")
    print("   all) is what bench-engine --metrics-out writes, schema in")
    print("   docs/stats_schema.md.")


if __name__ == "__main__":
    main()
