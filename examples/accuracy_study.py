"""Accuracy deep-dive: the pow defect, precision, and lattice depth.

Combines three accuracy stories of the paper into one study:

1. the Altera 13.0 ``pow`` defect (Section V.C) — error vs an exact
   double run, per lattice depth;
2. single precision — the error floor fp32 imposes regardless of the
   operator fix;
3. discretisation — the CRR error itself, and what parity-smoothed
   Richardson extrapolation recovers.

The depth × precision grid runs through the resumable scenario-sweep
layer (``repro.sweep``): every (N, precision) condition is one
persisted run-store row, so the study resumes instead of restarting if
interrupted, and re-running it is a no-op.  Only the flawed-pow column
stays on the direct simulator — the Altera 13.0 ``pow`` defect is a
:class:`MathProfile`, not a request precision, so it has no sweep axis.

Run:  python examples/accuracy_study.py     (about a minute: it prices
real batches at N up to 1024 under three math profiles)
"""

import tempfile
from pathlib import Path

from repro.core import ALTERA_13_0_DOUBLE, simulate_kernel_b_batch
from repro import price
from repro.finance import (
    Option,
    OptionType,
    convergence_study,
    generate_batch,
    richardson_extrapolation,
    rmse,
)
from repro.sweep import RunStore, SweepRunner, SweepSpec

DEPTHS = (128, 256, 512, 1024)
BATCH = 100


def depth_precision_spec() -> SweepSpec:
    """The study's grid: lattice depth × arithmetic precision."""
    return SweepSpec(
        name="accuracy-study",
        axes={"steps": DEPTHS, "precision": ("double", "single")},
        base={"kernel": "iv_b", "n_options": BATCH, "seed": 5,
              "option_type": "put"},
    )


def main() -> None:
    batch = list(generate_batch(n_options=BATCH, seed=5).options)

    print("=== RMSE vs lattice depth, per math configuration ===")
    spec = depth_precision_spec()
    store_path = Path(tempfile.mkdtemp()) / "accuracy_study.jsonl"
    stats = SweepRunner(spec, store_path).run()
    print(f"(sweep {spec.name!r}: {stats.cells} cells, "
          f"{stats.done} done -> {store_path.name}; interrupted runs "
          f"resume from the store)")
    cell_rmse = {
        (row.condition["steps"], row.condition["precision"]):
            row.result["rmse"]
        for row in RunStore(store_path).latest().values()
        if row.status == "done"
    }

    print(f"{'N':>6} {'flawed pow (FPGA)':>18} {'exact (dbl)':>16} "
          f"{'fp32 (sgl)':>15}")
    for steps in DEPTHS:
        reference = price(batch, steps=steps).prices
        flawed = rmse(reference,
                      simulate_kernel_b_batch(batch, steps, ALTERA_13_0_DOUBLE))
        print(f"{steps:>6} {flawed:>18.2e} "
              f"{cell_rmse[(steps, 'double')]:>16.2e} "
              f"{cell_rmse[(steps, 'single')]:>15.2e}")
    rerun = SweepRunner(spec, store_path).run()
    print(f"(re-running the grid executed {rerun.executed} cells — "
          f"the committed store makes it a no-op)")
    print("-> the pow defect sits at ~1e-3 at the paper's N=1024, exactly")
    print("   where fp32 rounding also lands: fixing the operator matters")
    print("   only in double precision (the paper's Section V.C argument).")

    print("\n=== Discretisation error and Richardson recovery ===")
    option = Option(spot=100.0, strike=100.0, rate=0.05, volatility=0.3,
                    maturity=1.0, option_type=OptionType.PUT)
    points = convergence_study(option, steps_list=DEPTHS,
                               reference_steps=16384)
    print(f"{'N':>6} {'lattice error':>14} {'richardson(N/2)':>16}")
    from repro.finance import price_binomial
    deep = price_binomial(option, 16384).price
    for point in points:
        extrapolated = richardson_extrapolation(option, point.steps // 2)
        print(f"{point.steps:>6} {point.abs_error:>14.2e} "
              f"{abs(extrapolated - deep):>16.2e}")
    print("-> at N=1024 the discretisation error (~1e-3) is the same size")
    print("   as the pow defect: past this depth, fixing the operator is")
    print("   pointless without also deepening the tree (and vice versa) —")
    print("   the 'good compromise' of Section V.B, quantified.")


if __name__ == "__main__":
    main()
